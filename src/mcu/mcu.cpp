#include "mcu/mcu.h"

#include <algorithm>

#include "common/crc32.h"

namespace aad::mcu {
namespace {

/// Auto-codec pick: candidates whose modeled load is within this fraction
/// of the fastest compete on compressed size instead.
constexpr double kAutoCodecSlack = 0.05;

}  // namespace

Mcu::Mcu(fabric::Fabric& fabric, sim::Scheduler& scheduler, sim::Trace& trace,
         telemetry::Registry& registry, const RuntimeRegistry& runtime,
         const McuConfig& config)
    : fabric_(fabric),
      scheduler_(scheduler),
      trace_(trace),
      runtime_(runtime),
      config_(config),
      rom_(config.rom_capacity),
      ram_(config.ram_capacity),
      engine_(config.engine),
      free_list_(fabric.geometry().frame_count),
      policy_(make_policy(config.policy, config.policy_seed)),
      counters_{registry.counter("mcu.invocations"),
                registry.counter("mcu.config_hits"),
                registry.counter("mcu.config_misses"),
                registry.counter("mcu.evictions"),
                registry.counter("mcu.frames_configured"),
                registry.counter("mcu.frames_skipped"),
                registry.counter("mcu.frames_skipped_delta"),
                registry.counter("mcu.allocation_retries"),
                registry.counter("mcu.defragmentations"),
                registry.counter("mcu.compressed_bytes_streamed"),
                registry.counter("mcu.crc_rejects"),
                registry.counter("mcu.refetches")} {}

McuStats Mcu::stats() const {
  McuStats s;
  s.invocations = counters_.invocations.value();
  s.config_hits = counters_.config_hits.value();
  s.config_misses = counters_.config_misses.value();
  s.evictions = counters_.evictions.value();
  s.frames_configured = counters_.frames_configured.value();
  s.frames_skipped = counters_.frames_skipped.value();
  s.frames_skipped_delta = counters_.frames_skipped_delta.value();
  s.allocation_retries = counters_.allocation_retries.value();
  s.defragmentations = counters_.defragmentations.value();
  s.compressed_bytes_streamed = counters_.bytes_streamed.value();
  s.crc_rejects = counters_.crc_rejects.value();
  s.refetches = counters_.refetches.value();
  s.codec_picks = codec_picks_;
  return s;
}

sim::SimTime Mcu::firmware_cost(unsigned cycles, sim::SimTime start) {
  const sim::SimTime t = config_.mcu_clock.cycles(cycles);
  trace_.record(sim::Stage::kFirmware, "firmware", start, start + t);
  return t;
}

memory::RomRecord Mcu::store_function(memory::FunctionId id,
                                      const bitstream::Bitstream& bs,
                                      std::optional<compress::CodecId> codec) {
  const auto& geometry = fabric_.geometry();
  AAD_REQUIRE(bs.info.geometry == geometry,
              "bitstream geometry does not match this device");
  AAD_REQUIRE(bs.frame_count() <= geometry.frame_count,
              "function larger than the whole device");

  const compress::CodecId requested = codec.value_or(config_.codec);
  const Bytes raw = bitstream::pack_frame_payloads(bs);
  compress::CodecId chosen = requested;
  Bytes compressed;
  if (requested == compress::CodecId::kAuto) {
    // Trial-compress with every real codec, model the cold load each would
    // cost through the engine's pipeline recurrence, and keep the fastest.
    // Near-ties (the config port hides cheap decoders) go to the smallest
    // stream: ROM capacity is the secondary objective.
    const unsigned frames = static_cast<unsigned>(bs.frame_count());
    const sim::SimTime frame_time = fabric_.port().frame_time(geometry);
    double best_ns = 0.0;
    std::vector<std::pair<compress::CodecId, Bytes>> trials;
    std::vector<double> times_ns;
    for (const compress::CodecId cand : compress::all_codec_ids()) {
      Bytes c = compress::make_codec(cand, geometry.frame_bytes())
                    ->compress(raw);
      const sim::SimTime t =
          engine_.estimate_time(c.size(), frames, cand, geometry.frame_bytes(),
                                frame_time, config_.rom_timing);
      times_ns.push_back(t.nanoseconds());
      if (trials.empty() || t.nanoseconds() < best_ns)
        best_ns = t.nanoseconds();
      trials.emplace_back(cand, std::move(c));
    }
    const double cutoff = best_ns * (1.0 + kAutoCodecSlack);
    std::size_t pick = 0;
    bool first = true;
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (times_ns[i] > cutoff) continue;
      if (first || trials[i].second.size() < trials[pick].second.size()) {
        pick = i;
        first = false;
      }
    }
    chosen = trials[pick].first;
    compressed = std::move(trials[pick].second);
  } else {
    compressed =
        compress::make_codec(chosen, geometry.frame_bytes())->compress(raw);
  }
  ++codec_picks_[chosen];

  // Per-window fingerprints: the driver metadata delta reconfiguration and
  // the load-cost estimator match against the engine's frame table.
  {
    auto& hashes = window_hashes_[id];
    hashes.clear();
    const std::size_t frame_bytes = geometry.frame_bytes();
    for (std::size_t off = 0; off + frame_bytes <= raw.size();
         off += frame_bytes)
      hashes.push_back(
          window_content_hash(ByteSpan(raw.data() + off, frame_bytes)));
  }

  memory::RomRecord record;
  record.function_id = id;
  record.name = bs.info.name;
  record.kind = bs.info.kind;
  record.codec = chosen;
  record.raw_size = static_cast<std::uint32_t>(raw.size());
  record.frames = static_cast<std::uint16_t>(bs.frame_count());
  record.clb_rows = static_cast<std::uint16_t>(geometry.clb_rows);
  record.input_width = bs.info.input_width;
  record.output_width = bs.info.output_width;
  record.kernel_id = bs.info.kernel_id;

  const memory::RomRecord stored = rom_.store(record, compressed);

  const sim::SimTime begin = scheduler_.now();
  scheduler_.advance(config_.rom_timing.write_time(compressed.size() +
                                                   memory::kRecordBytes));
  trace_.record(sim::Stage::kRom, bs.info.name + "/program", begin,
                scheduler_.now());

  // Host-driver recovery metadata: the decoded-image CRC every load is
  // verified against, and the pristine stream the re-fetch path restores
  // after a ROM corruption is caught.
  raw_crcs_[id] = Crc32::compute(raw);
  pristine_[id] = std::move(compressed);
  return stored;
}

std::vector<memory::FunctionId> Mcu::resident_functions() const {
  std::vector<memory::FunctionId> out;
  out.reserve(loaded_.size());
  for (const auto& [id, fn] : loaded_) out.push_back(id);
  return out;
}

std::vector<fabric::FrameIndex> Mcu::frames_of(memory::FunctionId id) const {
  const auto it = loaded_.find(id);
  return it != loaded_.end() ? it->second.frames
                             : std::vector<fabric::FrameIndex>{};
}

void Mcu::pin(memory::FunctionId id) {
  AAD_REQUIRE(loaded_.contains(id), "pinning a non-resident function");
  ++pinned_[id];
}

void Mcu::unpin(memory::FunctionId id) {
  const auto it = pinned_.find(id);
  if (it == pinned_.end()) return;
  if (--it->second == 0) pinned_.erase(it);
}

void Mcu::mark_speculative(memory::FunctionId id) {
  AAD_REQUIRE(loaded_.contains(id), "marking a non-resident function");
  speculative_.insert(id);
}

bool Mcu::load_feasible(memory::FunctionId id) const {
  if (loaded_.contains(id)) return true;  // hit: no frames touched
  const auto record = rom_.lookup(id);
  if (!record) return true;  // let load_invoke raise the provisioning error
  // Limit state: every non-pinned resident evicted.  Only the pinned
  // functions' frames stay blocked; can the strategy place `id` then?
  std::vector<bool> blocked(free_list_.frame_count(), false);
  for (const auto& [pinned, refs] : pinned_) {
    const auto it = loaded_.find(pinned);
    if (it == loaded_.end()) continue;
    for (const fabric::FrameIndex frame : it->second.frames)
      blocked[frame] = true;
  }
  return placement_possible(record->frames, config_.allocation, blocked);
}

bool Mcu::prefetch_feasible(memory::FunctionId id, sim::SimTime now,
                            sim::SimTime min_idle, double idle_factor) const {
  if (loaded_.contains(id)) return true;  // hit: no frames touched
  const auto record = rom_.lookup(id);
  if (!record) return false;  // speculating on an unprovisioned id: drop it
  // Like load_feasible's limit state, but only speculative residents and
  // dead-looking demand residents count as evictable; pinned functions and
  // live residents keep their frames blocked.
  std::vector<bool> blocked(free_list_.frame_count(), false);
  for (const auto& [fn, entry] : loaded_) {
    bool evictable = false;
    if (!pinned_.contains(fn)) {
      if (speculative_.contains(fn)) {
        evictable = true;
      } else if (const auto t = table_.find(fn); t != table_.end()) {
        const FrameTableEntry& frt = t->second;
        const sim::SimTime idle = now - frt.last_access;
        sim::SimTime threshold = min_idle;
        if (frt.access_count > 1) {
          const double mean_gap_ps =
              static_cast<double>((frt.last_access - frt.loaded_at)
                                      .picoseconds()) /
              static_cast<double>(frt.access_count - 1);
          const auto scaled = sim::SimTime::ps(
              static_cast<std::int64_t>(mean_gap_ps * idle_factor));
          if (scaled > threshold) threshold = scaled;
        }
        evictable = idle >= threshold;
      }
    }
    if (evictable) continue;
    for (const fabric::FrameIndex frame : entry.frames) blocked[frame] = true;
  }
  return placement_possible(record->frames, config_.allocation, blocked);
}

sim::SimTime Mcu::evict_cost(memory::FunctionId id, sim::SimTime start) {
  const auto it = loaded_.find(id);
  AAD_CHECK(it != loaded_.end(), "evicting a non-resident function");
  free_list_.release(it->second.frames);
  policy_->on_evict(id);
  table_.erase(id);
  loaded_.erase(it);
  speculative_.erase(id);
  counters_.evictions.add();
  return firmware_cost(config_.eviction_overhead_cycles, start);
}

void Mcu::evict(memory::FunctionId id) {
  AAD_REQUIRE(loaded_.contains(id), "function not resident");
  AAD_REQUIRE(!pinned_.contains(id), "evicting a pinned function");
  scheduler_.advance(evict_cost(id, scheduler_.now()));
}

DefragResult Mcu::defragment() {
  const DefragResult result = defragment_at(scheduler_.now());
  scheduler_.advance(result.time);
  return result;
}

DefragResult Mcu::defragment_at(sim::SimTime start) {
  // Compaction relocates every resident function; a pinned function may be
  // mid-execution on the fabric, so the mini-OS refuses to move it.
  AAD_REQUIRE(pinned_.empty(), "cannot defragment while functions are pinned");
  DefragResult result;
  sim::SimTime t = start;
  counters_.defragmentations.add();

  // Pack resident functions toward frame 0, in ascending order of their
  // current lowest frame, relocating each by re-streaming it from ROM.
  // Processing left-to-right guarantees a function's target region only
  // overlaps frames that are already free or its own old ones.
  std::vector<std::pair<fabric::FrameIndex, memory::FunctionId>> order;
  for (const auto& [id, fn] : loaded_)
    order.emplace_back(fn.frames.front(), id);
  std::sort(order.begin(), order.end());

  fabric::FrameIndex next = 0;
  for (const auto& [first, id] : order) {
    (void)first;
    auto& fn = loaded_.at(id);
    std::vector<fabric::FrameIndex> target(fn.record.frames);
    for (std::size_t i = 0; i < target.size(); ++i)
      target[i] = next + static_cast<fabric::FrameIndex>(i);
    if (target == fn.frames) {  // already packed
      next += fn.record.frames;
      continue;
    }
    free_list_.release(fn.frames);
    free_list_.claim(target);
    const ConfigureResult cfg =
        engine_.configure(rom_, fn.record, target, fabric_, config_.rom_timing,
                          &trace_, t, raw_crc_of(id));
    t += cfg.total;
    counters_.frames_configured.add(cfg.frames_written);
    counters_.frames_skipped.add(cfg.frames_skipped);
    counters_.frames_skipped_delta.add(cfg.frames_skipped_delta);
    counters_.bytes_streamed.add(cfg.bytes_streamed);

    fn.frames = target;
    fn.network.reset();
    fn.executor.reset();
    table_.at(id).frames = target;
    ++result.functions_moved;
    result.frames_reconfigured += cfg.frames_written;
    t += firmware_cost(config_.eviction_overhead_cycles, t);
    next += fn.record.frames;
  }
  result.time = t - start;
  return result;
}

void Mcu::reset_fabric() {
  loaded_.clear();
  table_.clear();
  pinned_.clear();
  speculative_.clear();
  free_list_.reset();
  fabric_.erase();
  engine_.reset_tracking();  // the frame table no longer matches the fabric
}

std::vector<bool> Mcu::matched_windows(
    const memory::RomRecord& record,
    std::span<const fabric::FrameIndex> targets, unsigned* count) const {
  std::vector<bool> matched(targets.size(), false);
  if (count) *count = 0;
  if (!config_.engine.delta_reconfig) return matched;
  const auto it = window_hashes_.find(record.function_id);
  if (it == window_hashes_.end() || it->second.size() != targets.size())
    return matched;
  for (std::size_t w = 0; w < targets.size(); ++w) {
    const std::uint64_t resident = engine_.frame_hash(targets[w]);
    if (resident != 0 && resident == it->second[w]) {
      matched[w] = true;
      if (count) ++*count;
    }
  }
  return matched;
}

std::optional<Mcu::DeltaPlan> Mcu::plan_placement(
    const memory::RomRecord& record) const {
  // Candidate A: the frames the free list would hand out.
  const auto free_frames = free_list_.peek(record.frames, config_.allocation);
  unsigned matched_free = 0;
  std::vector<bool> free_mask;
  if (free_frames)
    free_mask = matched_windows(record, *free_frames, &matched_free);

  // Candidate B: in-place upgrade — the same-footprint unpinned resident
  // whose frames match the most windows (lowest id wins ties).
  std::optional<memory::FunctionId> victim;
  std::vector<bool> victim_mask;
  std::vector<fabric::FrameIndex> victim_frames;
  unsigned matched_victim = 0;
  for (const auto& [fid, fn] : loaded_) {
    if (fid == record.function_id) continue;
    if (pinned_.contains(fid)) continue;
    if (fn.record.frames != record.frames) continue;
    unsigned m = 0;
    auto mask = matched_windows(record, fn.frames, &m);
    if (m > matched_victim) {
      victim = fid;
      matched_victim = m;
      victim_mask = std::move(mask);
      victim_frames = fn.frames;
    }
  }

  // Upgrading costs an eviction, so it must both clear a majority of the
  // footprint and beat whatever the free placement would match.
  const bool upgrade = victim.has_value() &&
                       matched_victim * 2 >= record.frames &&
                       (!free_frames || matched_victim > matched_free);
  DeltaPlan plan;
  if (upgrade) {
    plan.frames = std::move(victim_frames);
    plan.upgrade_victim = victim;
    plan.matched = std::move(victim_mask);
    plan.matched_count = matched_victim;
    return plan;
  }
  if (!free_frames) return std::nullopt;  // only the eviction loop remains
  plan.frames = *free_frames;
  plan.matched = std::move(free_mask);
  plan.matched_count = matched_free;
  return plan;
}

LoadEstimate Mcu::estimate_load(memory::FunctionId id) const {
  LoadEstimate est;
  if (const auto it = loaded_.find(id); it != loaded_.end()) {
    est.known = true;
    est.resident = true;
    est.frames = it->second.record.frames;
    return est;
  }
  const auto record = rom_.lookup(id);
  if (!record) return est;
  est.known = true;
  est.frames = record->frames;
  est.compressed_bytes = record->compressed_size;

  std::vector<bool> skip;
  if (config_.engine.delta_reconfig) {
    if (const auto plan = plan_placement(*record)) {
      skip = plan->matched;
      est.frames_matched = plan->matched_count;
      est.evictions = plan->upgrade_victim ? 1 : 0;
    } else {
      est.evictions = 1;  // eviction loop; match prediction unknown
    }
  } else if (!free_list_.peek(record->frames, config_.allocation)) {
    est.evictions = 1;
  }

  const auto& geometry = fabric_.geometry();
  sim::SimTime t = engine_.estimate_time(
      est.compressed_bytes, record->frames, record->codec,
      geometry.frame_bytes(), fabric_.port().frame_time(geometry),
      config_.rom_timing, skip);
  if (est.evictions)
    t += config_.mcu_clock.cycles(config_.eviction_overhead_cycles *
                                  est.evictions);
  t += config_.mcu_clock.cycles(config_.command_overhead_cycles);
  est.time = t;
  return est;
}

LoadResult Mcu::ensure_loaded(memory::FunctionId id) {
  sim::SimTime elapsed;
  const LoadResult result = load_at(id, scheduler_.now(), &elapsed);
  scheduler_.advance(elapsed);
  return result;
}

LoadResult Mcu::load_at(memory::FunctionId id, sim::SimTime start,
                        sim::SimTime* elapsed) {
  LoadResult result;
  sim::SimTime t = start;
  *elapsed = sim::SimTime::zero();

  if (const auto it = loaded_.find(id); it != loaded_.end()) {
    // Config hit: just refresh the Frame Replacement Table timestamp.
    result.hit = true;
    auto& entry = table_.at(id);
    entry.last_access = t;
    ++entry.access_count;
    policy_->on_access(id, t);
    counters_.config_hits.add();
    return result;
  }

  const auto record = rom_.lookup(id);
  if (!record)
    AAD_FAIL(ErrorCode::kNotFound,
             "function " + std::to_string(id) + " not provisioned in ROM");
  AAD_REQUIRE(record->frames <= fabric_.geometry().frame_count,
              "function larger than the device");
  counters_.config_misses.add();

  // Delta reconfiguration: prefer an in-place upgrade when a resident
  // same-footprint sibling already holds most of this function's frames —
  // evicting it and reusing its exact frame set turns the load into a
  // stream of just the dirty windows.
  std::optional<std::vector<fabric::FrameIndex>> frames;
  if (config_.engine.delta_reconfig) {
    if (auto plan = plan_placement(*record); plan && plan->upgrade_victim) {
      t += evict_cost(*plan->upgrade_victim, t);
      ++result.evictions;
      free_list_.claim(plan->frames);
      frames = std::move(plan->frames);
    }
  }

  // Allocation / eviction loop (§2.5): "if the Free Frame list is
  // insufficient ... some functions from the FPGA have to be erased".
  bool tried_defrag = false;
  while (!frames) {
    frames = free_list_.allocate(record->frames, config_.allocation);
    if (frames) break;
    counters_.allocation_retries.add();
    // Under pure external fragmentation, one compaction pass can satisfy a
    // contiguous request without evicting anyone.  (Not while anything is
    // pinned: compaction would relocate an executing function's frames.)
    if (!tried_defrag && config_.defragment_on_pressure && pinned_.empty() &&
        free_list_.free_count() >= record->frames) {
      tried_defrag = true;
      t += defragment_at(t).time;
      continue;
    }
    auto resident = resident_functions();
    if (!pinned_.empty())
      std::erase_if(resident, [this](memory::FunctionId fn) {
        return pinned_.contains(fn);
      });
    if (resident.empty())
      AAD_FAIL(ErrorCode::kCapacityExceeded,
               pinned_.empty()
                   ? "cannot place function even on an empty device "
                     "(fragmentation-free allocation impossible)"
                   : "cannot place function: every resident function is "
                     "pinned (caller should have checked load_feasible)");
    // A demand miss steals speculative (prefetched, never demanded) frames
    // before any demand-loaded resident is considered — a wrong guess must
    // never cost real work a better victim.  Lowest id wins for
    // determinism; resident_functions() iterates in ascending id order.
    memory::FunctionId victim = 0;
    bool stole_speculative = false;
    if (!speculative_.empty()) {
      for (const memory::FunctionId fn : resident) {
        if (speculative_.contains(fn)) {
          victim = fn;
          stole_speculative = true;
          break;
        }
      }
    }
    if (!stole_speculative) victim = policy_->choose_victim(resident, table_);
    t += evict_cost(victim, t);
    ++result.evictions;
  }

  // Stream ROM -> decompress -> config port, window by window.  A CRC
  // reject (corrupted ROM payload or decode divergence) leaves the fabric
  // untouched; the driver re-fetches the pristine stream from the host,
  // reprograms the ROM, and retries once before surfacing the failure.
  const sim::SimTime begin = t;
  ConfigureResult cfg;
  for (unsigned attempt = 0;; ++attempt) {
    try {
      cfg = engine_.configure(rom_, *record, *frames, fabric_,
                              config_.rom_timing, &trace_, t, raw_crc_of(id));
      break;
    } catch (const Error& error) {
      if (error.code() != ErrorCode::kCorruptData) {
        free_list_.release(*frames);
        throw;
      }
      counters_.crc_rejects.add();
      const auto pristine = pristine_.find(id);
      if (!config_.refetch_on_crc_reject || attempt >= 1 ||
          pristine == pristine_.end()) {
        free_list_.release(*frames);
        throw;
      }
      rom_.rewrite_payload(id, pristine->second);
      counters_.refetches.add();
      const sim::SimTime d =
          config_.rom_timing.write_time(pristine->second.size());
      trace_.record(sim::Stage::kRom, record->name + "/refetch", t, t + d);
      t += d;
    }
  }
  t += cfg.total;
  counters_.frames_configured.add(cfg.frames_written);
  counters_.frames_skipped.add(cfg.frames_skipped);
  counters_.frames_skipped_delta.add(cfg.frames_skipped_delta);
  counters_.bytes_streamed.add(cfg.bytes_streamed);

  LoadedFunction fn;
  fn.record = *record;
  fn.frames = *frames;
  loaded_.emplace(id, std::move(fn));

  FrameTableEntry entry;
  entry.frames = *frames;
  entry.loaded_at = t;
  entry.last_access = t;
  entry.access_count = 1;
  table_.emplace(id, std::move(entry));

  policy_->on_load(id, t);
  policy_->on_access(id, t);

  t += firmware_cost(config_.command_overhead_cycles, t);
  result.frames_configured = static_cast<unsigned>(cfg.frames_written);
  result.reconfig_time = t - begin;
  *elapsed = t - start;
  return result;
}

netlist::LutExecutor& Mcu::executor_for(LoadedFunction& fn) {
  if (!fn.executor) {
    fn.network = std::make_unique<netlist::LutNetwork>(fabric_.extract_network(
        fn.frames, fn.record.name, fn.record.input_width,
        fn.record.output_width));
    fn.executor = std::make_unique<netlist::LutExecutor>(*fn.network);
  }
  return *fn.executor;
}

sim::SimTime Mcu::decode_invoke(sim::SimTime start) {
  counters_.invocations.add();
  return firmware_cost(config_.command_overhead_cycles, start);
}

LoadResult Mcu::load_invoke(memory::FunctionId id, sim::SimTime start,
                            sim::SimTime* elapsed) {
  return load_at(id, start, elapsed);
}

PreparedInvoke Mcu::prepare_invoke(memory::FunctionId id, sim::SimTime start) {
  PreparedInvoke prep;
  prep.firmware_time = decode_invoke(start);
  sim::SimTime load_elapsed;
  prep.load = load_invoke(id, start + prep.firmware_time, &load_elapsed);
  prep.time = prep.firmware_time + load_elapsed;
  return prep;
}

ExecutedInvoke Mcu::execute_invoke(memory::FunctionId id, ByteSpan input,
                                   sim::SimTime start) {
  const auto it = loaded_.find(id);
  AAD_CHECK(it != loaded_.end(), "execute_invoke on a non-resident function");
  auto& fn = it->second;
  ExecutedInvoke run;
  sim::SimTime t = start;

  // Data-input module: host payload is already in local RAM (PCI layer);
  // stage it to the fabric.
  ram_.reset_allocation();
  const std::size_t in_off = ram_.allocate(input.size());
  ram_.write(in_off, input);
  {
    // The data-input module streams from RAM to the fabric as it reads.
    const sim::SimTime d = config_.ram_timing.access_time(input.size());
    trace_.record(sim::Stage::kDataIn, fn.record.name + "/in", t, t + d);
    t += d;
    run.io_time += d;
  }

  // Execute.
  HardwareResult hw;
  if (fn.record.kind == bitstream::FunctionKind::kNetlist) {
    auto& executor = executor_for(fn);
    executor.reset();
    if (runtime_.has_netlist_driver(fn.record.kernel_id)) {
      hw = runtime_.netlist_driver(fn.record.kernel_id)(executor, input);
    } else {
      hw = RuntimeRegistry::run_combinational(
          executor, input, fn.record.input_width, fn.record.output_width);
    }
  } else {
    const BehavioralModel& model = runtime_.behavioral(fn.record.kernel_id);
    hw.output = model.compute(input);
    hw.cycles = model.cycles(input.size());
  }
  {
    const sim::SimTime d = fabric_.execution_time(hw.cycles);
    trace_.record(sim::Stage::kExecute, fn.record.name + "/exec", t, t + d);
    t += d;
    run.exec_time = d;
  }
  run.exec_cycles = hw.cycles;

  // Output-collection module: stage result through local RAM.
  const std::size_t out_off = ram_.allocate(hw.output.size());
  ram_.write(out_off, hw.output);
  {
    const sim::SimTime d = config_.ram_timing.access_time(hw.output.size());
    trace_.record(sim::Stage::kDataOut, fn.record.name + "/out", t, t + d);
    t += d;
    run.io_time += d;
  }

  run.output = std::move(hw.output);
  run.time = t - start;
  return run;
}

InvokeResult Mcu::invoke(memory::FunctionId id, ByteSpan input) {
  const sim::SimTime start = scheduler_.now();
  const PreparedInvoke prep = prepare_invoke(id, start);
  ExecutedInvoke run = execute_invoke(id, input, start + prep.time);
  scheduler_.advance(prep.time + run.time);

  InvokeResult result;
  result.output = std::move(run.output);
  result.load = prep.load;
  result.exec_cycles = run.exec_cycles;
  result.exec_time = run.exec_time;
  result.io_time = run.io_time;
  result.firmware_time = prep.firmware_time;
  result.total = result.firmware_time + result.load.reconfig_time +
                 result.exec_time + result.io_time;
  return result;
}

}  // namespace aad::mcu
