// Function runtime registry: how the microcontroller turns input bytes into
// output bytes once a function is resident on the fabric.
//
// Netlist functions execute *from the configuration plane*: the MCU extracts
// the LUT network out of the configured frames and steps it.  A per-kernel
// NetlistDriver describes the data framing (how bytes map to input-bus beats
// and output bits back to bytes); kernels without a registered driver get
// the default single-shot combinational contract.
//
// Behavioral functions (the documented substitution for kernels too large
// to gate-map) pair a software-exact compute with a calibrated cycle model;
// the MCU charges fabric time from the model and takes the bytes from the
// compute.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/bytebuffer.h"
#include "netlist/lutnetwork.h"

namespace aad::mcu {

struct HardwareResult {
  Bytes output;
  std::int64_t cycles = 0;  ///< fabric clock cycles consumed
};

/// Drives a resident netlist function for one invocation.
using NetlistDriver =
    std::function<HardwareResult(netlist::LutExecutor&, ByteSpan)>;

struct BehavioralModel {
  /// Bit-exact computation (the golden software implementation).
  std::function<Bytes(ByteSpan)> compute;
  /// Fabric cycles the hardware implementation would take on `input_bytes`.
  std::function<std::int64_t(std::size_t input_bytes)> cycles;
};

class RuntimeRegistry {
 public:
  void register_netlist_driver(std::uint32_t kernel_id, NetlistDriver driver);
  void register_behavioral(std::uint32_t kernel_id, BehavioralModel model);

  bool has_netlist_driver(std::uint32_t kernel_id) const;
  const NetlistDriver& netlist_driver(std::uint32_t kernel_id) const;
  const BehavioralModel& behavioral(std::uint32_t kernel_id) const;

  /// Default framing for unregistered netlist kernels: pack the input bytes
  /// onto the input bus LSB-first (zero-padded), run a single combinational
  /// step, and pack the output bus back into ceil(output_width/8) bytes.
  static HardwareResult run_combinational(netlist::LutExecutor& executor,
                                          ByteSpan input,
                                          std::size_t input_width,
                                          std::size_t output_width);

 private:
  std::map<std::uint32_t, NetlistDriver> netlist_;
  std::map<std::uint32_t, BehavioralModel> behavioral_;
};

/// Bit packing helpers shared by drivers (LSB-first within each byte).
std::vector<bool> bytes_to_bits(ByteSpan bytes, std::size_t bit_count);
Bytes bits_to_bytes(const std::vector<bool>& bits);

}  // namespace aad::mcu
