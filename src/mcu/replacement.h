// Frame Replacement Policy and Frame Replacement Table (paper §2.5).
//
// The paper prescribes LRU: "the frames that are to be replaced ... makes
// those frames that belong to the frequently least used Algorithm potential
// candidates for replacement ... That algorithm which has the oldest time
// stamp provides extra frames for potential reconfiguration."
//
// We implement LRU exactly as described (via the Frame Replacement Table's
// last-access timestamps) plus FIFO / LFU / Random baselines and a Belady
// oracle upper bound for experiment E3.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/prng.h"
#include "fabric/geometry.h"
#include "sim/time.h"

namespace aad::mcu {

using FunctionId = std::uint32_t;

/// One row of the paper's Frame Replacement Table: "the list of frames
/// occupied by each algorithm present on the FPGA along with a time stamp
/// specifying the last moment at which it was accessed."
struct FrameTableEntry {
  std::vector<fabric::FrameIndex> frames;
  sim::SimTime loaded_at;
  sim::SimTime last_access;
  std::uint64_t access_count = 0;
};

/// The table itself, keyed by resident algorithm.
using FrameReplacementTable = std::map<FunctionId, FrameTableEntry>;

enum class PolicyKind : std::uint8_t {
  kLru = 0,    ///< the paper's policy
  kFifo = 1,
  kLfu = 2,
  kRandom = 3,
  kBelady = 4, ///< clairvoyant upper bound (needs the future trace)
};

const char* to_string(PolicyKind kind) noexcept;

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual PolicyKind kind() const noexcept = 0;
  virtual std::string name() const = 0;

  virtual void on_load(FunctionId fn, sim::SimTime now) = 0;
  virtual void on_access(FunctionId fn, sim::SimTime now) = 0;
  virtual void on_evict(FunctionId fn) = 0;

  /// Pick a victim among the resident functions (never empty).  `table`
  /// provides the Frame Replacement Table the paper's mini-OS consults.
  virtual FunctionId choose_victim(
      std::span<const FunctionId> resident,
      const FrameReplacementTable& table) = 0;

  /// Belady only: provide the upcoming request sequence.  Default no-op.
  virtual void set_future(std::vector<FunctionId> future);
};

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind,
                                               std::uint64_t seed = 1);

}  // namespace aad::mcu
