#include "mcu/report.h"

#include <sstream>

#include "sim/scheduler.h"

namespace aad::mcu {

std::string frame_map(const Mcu& mcu) {
  const unsigned frames = mcu.free_frames().frame_count();
  std::string map(frames, '.');
  char label = 'A';
  for (const auto& [id, entry] : mcu.frame_table()) {
    (void)id;
    const char c = label <= 'Z' ? label : '?';
    for (fabric::FrameIndex f : entry.frames)
      if (f < frames) map[f] = c;
    ++label;
  }
  return map;
}

std::string frame_table_report(const Mcu& mcu) {
  std::ostringstream out;
  out << "Frame Replacement Table (" << mcu.frame_table().size()
      << " resident):\n";
  char label = 'A';
  for (const auto& [id, entry] : mcu.frame_table()) {
    out << "  [" << (label <= 'Z' ? label : '?') << "] fn " << id << ": "
        << entry.frames.size() << " frames {";
    for (std::size_t i = 0; i < entry.frames.size(); ++i) {
      if (i) out << ",";
      if (i == 4 && entry.frames.size() > 5) {
        out << "...";
        break;
      }
      out << entry.frames[i];
    }
    out << "} last-access " << sim::to_string(entry.last_access)
        << " accesses " << entry.access_count << "\n";
    ++label;
  }
  return out.str();
}

std::string load_cost_report(const Mcu& mcu) {
  std::ostringstream out;
  out << "Load-cost model (" << mcu.rom().records().size()
      << " provisioned):\n";
  for (const auto& record : mcu.rom().records()) {
    const LoadEstimate est = mcu.estimate_load(record.function_id);
    out << "  fn " << record.function_id << " [" << record.name << "] "
        << compress::to_string(record.codec) << " "
        << record.compressed_size << "B/" << record.frames << "f: ";
    if (est.resident) {
      out << "resident\n";
      continue;
    }
    out << "load " << sim::to_string(est.time);
    if (est.frames_matched)
      out << " (" << est.frames_matched << " frames delta-matched)";
    if (est.evictions) out << " +" << est.evictions << " eviction";
    out << "\n";
  }
  return out.str();
}

}  // namespace aad::mcu
