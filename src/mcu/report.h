// Human-readable mini-OS state reports: the frame-occupancy map and the
// Frame Replacement Table, for examples and debugging.
#pragma once

#include <string>

#include "mcu/mcu.h"

namespace aad::mcu {

/// One-line device map, one character per frame:
///   '.' free, 'A'..'Z' resident functions (in frame-table order), '?'
///   beyond 26 residents.  E.g. "AAAAAAAAAAAABBBB....CCCCCCCCCCCCCC......".
std::string frame_map(const Mcu& mcu);

/// Multi-line rendering of the paper's Frame Replacement Table: function,
/// frames occupied, last-access timestamp, access count.
std::string frame_table_report(const Mcu& mcu);

/// The load-cost model's view of every provisioned function: codec,
/// compressed bytes, footprint, delta-matched frames and the modeled load
/// cost if it were requested right now (see Mcu::estimate_load).
std::string load_cost_report(const Mcu& mcu);

}  // namespace aad::mcu
