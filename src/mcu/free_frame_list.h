// The mini-OS Free Frame List (paper §2.5): "the micro-controller's mini OS
// maintains Frames in the FPGA which are currently not used to realize any
// logic and are thus potentially programmable without any intervention to
// the functions currently being executed."
//
// Because our bitstreams are relocatable (slot-relative references), a
// function can be placed into contiguous *or* scattered frames; the
// allocation strategy controls which, and the fragmentation metrics feed
// experiment E5.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fabric/geometry.h"

namespace aad::mcu {

enum class AllocationStrategy : std::uint8_t {
  kFirstFitContiguous,  ///< lowest contiguous run that fits
  kBestFitContiguous,   ///< smallest contiguous run that fits
  kGatherScattered,     ///< any free frames, lowest-index first
};

const char* to_string(AllocationStrategy strategy) noexcept;

/// Could `needed` frames be placed under `strategy` on a device where only
/// the frames marked true in `blocked` are unavailable?  The one owner of
/// each strategy's placement rule (contiguous run vs total count), shared
/// by FreeFrameList::allocate's semantics and Mcu::load_feasible's
/// limit-state probe so the two can never diverge.
bool placement_possible(unsigned needed, AllocationStrategy strategy,
                        const std::vector<bool>& blocked);

class FreeFrameList {
 public:
  explicit FreeFrameList(unsigned frame_count);

  unsigned frame_count() const noexcept {
    return static_cast<unsigned>(free_.size());
  }
  unsigned free_count() const noexcept { return free_frames_; }
  bool is_free(fabric::FrameIndex frame) const;

  /// Try to reserve `count` frames.  Returns the chosen frames (ascending)
  /// or nullopt when the strategy cannot satisfy the request — note that
  /// contiguous strategies can fail even when free_count() >= count
  /// (external fragmentation), while kGatherScattered fails only when the
  /// device is genuinely short of frames.
  std::optional<std::vector<fabric::FrameIndex>> allocate(
      unsigned count, AllocationStrategy strategy);

  /// Where WOULD allocate() place `count` frames right now?  Pure selection
  /// without reserving anything — the load-cost estimator's placement
  /// predictor.  allocate() is exactly peek() + claim(), so prediction and
  /// execution can never diverge.
  std::optional<std::vector<fabric::FrameIndex>> peek(
      unsigned count, AllocationStrategy strategy) const;

  /// Return frames to the free list.  Throws if any frame is already free
  /// (double release — a firmware bug the tests probe for).
  void release(std::span<const fabric::FrameIndex> frames);

  /// Reserve a specific frame set (defragmenter relocation target).
  /// Throws if any frame is already occupied.
  void claim(std::span<const fabric::FrameIndex> frames);

  /// All frames free again (device erase).
  void reset();

  // --- fragmentation metrics ---------------------------------------------
  unsigned largest_free_run() const noexcept;
  unsigned free_run_count() const noexcept;
  /// 1 - largest_run/free_count; 0 when unfragmented or empty.
  double external_fragmentation() const noexcept;

 private:
  std::optional<std::vector<fabric::FrameIndex>> select_contiguous(
      unsigned count, bool best_fit) const;

  std::vector<bool> free_;
  unsigned free_frames_;
};

}  // namespace aad::mcu
