// The PCI-based microcontroller and its mini-OS (paper §2.3, §2.5).
//
// Owns the ROM, the local RAM, the configuration engine, the Free Frame
// List and the Frame Replacement Table; executes the on-demand algorithm:
//
//   "When the host requests the execution of a particular algorithm ... the
//    micro-controller is responsible for configuring the FPGA with that
//    relevant configuration bit-stream if the function is not already
//    present on the FPGA."
//
// ensure_loaded() is that algorithm verbatim: hit check, Free Frame List
// allocation, eviction loop driven by the Frame Replacement Policy, then
// streaming configuration.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "fabric/fabric.h"
#include "mcu/config_engine.h"
#include "mcu/free_frame_list.h"
#include "mcu/replacement.h"
#include "mcu/runtime.h"
#include "memory/ram.h"
#include "memory/rom.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "telemetry/registry.h"

namespace aad::mcu {

struct McuConfig {
  sim::Frequency mcu_clock = sim::Frequency::mhz(66);
  unsigned command_overhead_cycles = 400;   ///< firmware per command
  unsigned eviction_overhead_cycles = 120;  ///< table + free-list updates
  AllocationStrategy allocation = AllocationStrategy::kFirstFitContiguous;
  /// When a contiguous allocation fails despite enough total free frames,
  /// compact the resident functions once before resorting to eviction.
  bool defragment_on_pressure = false;
  /// When the configuration engine rejects a load on a CRC mismatch
  /// (corrupted ROM payload), reprogram the payload from the host driver's
  /// pristine copy and retry the load once — the per-function re-fetch
  /// path.  Off: the load fails with kCorruptData and the caller surfaces
  /// the failure (the server fails the request cleanly).
  bool refetch_on_crc_reject = true;
  PolicyKind policy = PolicyKind::kLru;
  std::uint64_t policy_seed = 1;
  compress::CodecId codec = compress::CodecId::kFrameDelta;
  memory::RomTiming rom_timing;
  memory::RamTiming ram_timing;
  ConfigEngineConfig engine;
  std::size_t rom_capacity = 512 * 1024;
  std::size_t ram_capacity = 64 * 1024;
};

struct LoadResult {
  bool hit = false;                 ///< function was already resident
  unsigned frames_configured = 0;
  unsigned evictions = 0;
  sim::SimTime reconfig_time;       ///< zero on hit
};

struct InvokeResult {
  Bytes output;
  LoadResult load;
  std::int64_t exec_cycles = 0;
  sim::SimTime exec_time;
  sim::SimTime io_time;             ///< data-in + data-out staging
  sim::SimTime firmware_time;
  sim::SimTime total;
};

/// Stage 1 of the staged invoke path: firmware command decode plus the
/// on-demand load (§2.5), as if it began at a caller-chosen start time.
struct PreparedInvoke {
  LoadResult load;
  sim::SimTime firmware_time;  ///< command decode
  sim::SimTime time;           ///< firmware + evictions + reconfiguration
};

/// Stage 2: RAM staging in, fabric execution, output collection.
struct ExecutedInvoke {
  Bytes output;
  std::int64_t exec_cycles = 0;
  sim::SimTime exec_time;
  sim::SimTime io_time;  ///< data-in + data-out staging
  sim::SimTime time;     ///< io + exec total
};

/// Snapshot of the device's `mcu.*` registry counters (see
/// telemetry/registry.h — the counters themselves live on the card's
/// telemetry::Registry; this struct is the conventional typed view).
struct McuStats {
  std::uint64_t invocations = 0;
  std::uint64_t config_hits = 0;
  std::uint64_t config_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t frames_configured = 0;
  std::uint64_t frames_skipped = 0;        ///< all skipped port writes
  std::uint64_t frames_skipped_delta = 0;  ///< hash-tracked delta matches
  std::uint64_t allocation_retries = 0;    ///< contiguous-alloc failures
  std::uint64_t defragmentations = 0;
  /// Compressed bytes actually fetched from ROM by loads; under delta
  /// reconfiguration, matched windows' spans are never fetched.
  std::uint64_t compressed_bytes_streamed = 0;
  /// Loads the configuration engine rejected on a CRC mismatch before
  /// programming anything (corrupted bitstreams caught cleanly).
  std::uint64_t crc_rejects = 0;
  /// CRC rejects recovered by reprogramming the ROM payload from the
  /// host's pristine copy (refetch_on_crc_reject).
  std::uint64_t refetches = 0;
  /// Stored functions by the codec they ended up with — under kAuto this
  /// is the record of what the pick chose.
  std::map<compress::CodecId, std::uint64_t> codec_picks;
};

/// What would load_invoke(id) cost right now?  The shared load-cost model:
/// modeled from the record's compressed bytes plus the frames the delta
/// tracker predicts it can skip, through the same pipeline recurrence the
/// configuration engine executes.  Pure query — no simulated time, no
/// state change.
struct LoadEstimate {
  bool known = false;           ///< provisioned in ROM (or resident)
  bool resident = false;        ///< hit: zero cost
  unsigned frames = 0;          ///< footprint
  unsigned frames_matched = 0;  ///< windows predicted to delta-skip
  unsigned evictions = 0;       ///< predicted eviction count
  std::size_t compressed_bytes = 0;
  sim::SimTime time;            ///< modeled load_invoke duration
};

/// Outcome of a mini-OS compaction pass.
struct DefragResult {
  unsigned functions_moved = 0;
  unsigned frames_reconfigured = 0;
  sim::SimTime time;
};

class Mcu {
 public:
  /// `registry` is the card's counter registry; the MCU registers its
  /// `mcu.*` counters there at construction and bumps the handles on the
  /// hot path.  Must outlive the Mcu.
  Mcu(fabric::Fabric& fabric, sim::Scheduler& scheduler, sim::Trace& trace,
      telemetry::Registry& registry, const RuntimeRegistry& runtime,
      const McuConfig& config = {});

  // --- provisioning (host -> ROM, via PCI at the core layer) --------------

  /// Compress `bitstream`'s frame payloads with `codec` (or the configured
  /// default) and store stream + record in ROM.  Advances simulated time by
  /// the ROM programming cost.  CodecId::kAuto trial-compresses with every
  /// real codec and keeps the one whose modeled load is cheapest (measured
  /// compressed size through the engine's pipeline recurrence); near-ties
  /// go to the smallest stream, since ROM capacity is the secondary
  /// objective.  The resolved codec lands in the returned record.
  memory::RomRecord store_function(
      memory::FunctionId id, const bitstream::Bitstream& bitstream,
      std::optional<compress::CodecId> codec = std::nullopt);

  // --- the on-demand path --------------------------------------------------

  /// Make `id` resident (§2.5's algorithm).  Advances simulated time.
  LoadResult ensure_loaded(memory::FunctionId id);

  /// Execute `id` on `input`.  Loads on demand, stages data through local
  /// RAM, runs on the fabric, collects the output.  Advances simulated time.
  /// (Synchronous compatibility shim over the staged path below.)
  InvokeResult invoke(memory::FunctionId id, ByteSpan input);

  // --- the staged path (event-driven pipeline) -----------------------------
  // The CoprocessorServer drives invocations as discrete events, so stages
  // of different requests can overlap (request B's PCI transfer during
  // request A's reconfiguration).  These methods mutate device state
  // immediately — the caller has already reserved the device for a window
  // beginning at `start` — but return simulated durations instead of
  // advancing the scheduler; trace spans are stamped at `start`-relative
  // virtual times.  Calls for the same request must be issued in service
  // order; the configuration-engine stages (decode_invoke + load_invoke)
  // and the fabric stage (execute_invoke) are separable, so the server may
  // stream request B's configuration while request A still owns the fabric
  // — provided every function with an outstanding fabric window is pinned
  // (see pin()) so B's load cannot evict or overwrite its frames.

  /// Firmware command decode as of `start` — the fixed per-command cost the
  /// microcontroller pays before the on-demand load.  Counts the invocation.
  sim::SimTime decode_invoke(sim::SimTime start);

  /// The on-demand load (§2.5) as of `start`: hit check, allocation,
  /// eviction loop (pinned functions are never chosen as victims), streaming
  /// configuration.  `*elapsed` receives the full duration (zero on a hit).
  LoadResult load_invoke(memory::FunctionId id, sim::SimTime start,
                         sim::SimTime* elapsed);

  /// decode_invoke + load_invoke back-to-back (the serialized device stage);
  /// kept as the composition so the synchronous shim and the no-overlap
  /// server path stay bit-exact with the split primitives.
  PreparedInvoke prepare_invoke(memory::FunctionId id, sim::SimTime start);

  /// Data-in, fabric execution, output collection as of `start`.
  /// Requires `id` resident (load_invoke/prepare_invoke was called).
  ExecutedInvoke execute_invoke(memory::FunctionId id, ByteSpan input,
                                sim::SimTime start);

  // --- pinning (overlapped reconfiguration + batching) ---------------------
  // While the fabric executes function A, the server streams function B's
  // configuration through the engine.  Pinning A for the duration of B's
  // load_invoke keeps A out of the eviction loop, and — because allocation
  // only ever hands out free frames — guarantees B's frame set is disjoint
  // from A's.  Pins are REFERENCE COUNTED: two independent holders (a
  // request batch pinning its function across all of its back-to-back
  // fabric windows, and an overlapped load pinning every executing
  // function for its duration) can pin the same function, and it stays
  // pinned until the last holder unpins.  Pins are a host-driver concept:
  // they cost no simulated time.

  /// Exclude a resident function from eviction.  Each pin() call takes one
  /// reference; the function is evictable again only when every reference
  /// has been unpin()ned.
  void pin(memory::FunctionId id);
  /// Release one pin reference (no-op if not pinned).
  void unpin(memory::FunctionId id);
  bool is_pinned(memory::FunctionId id) const { return pinned_.contains(id); }
  /// Functions with at least one pin reference (not the reference total).
  std::size_t pinned_count() const noexcept { return pinned_.size(); }
  /// Outstanding pin references on `id` (0 when unpinned).
  unsigned pin_count(memory::FunctionId id) const {
    const auto it = pinned_.find(id);
    return it != pinned_.end() ? it->second : 0u;
  }

  /// Tag a resident function as speculatively loaded (a prefetch, not yet
  /// demanded).  Speculative residents are NOT pinned — the opposite: the
  /// eviction loop prefers them as victims, so a demand miss steals their
  /// frames before touching any demand-loaded resident.  The tag clears on
  /// eviction and device reset; the driver clears it explicitly when a
  /// demand hit consumes the prefetch.
  void mark_speculative(memory::FunctionId id);
  /// Drop the speculative tag (no-op when absent).
  void clear_speculative(memory::FunctionId id) { speculative_.erase(id); }
  bool is_speculative(memory::FunctionId id) const {
    return speculative_.contains(id);
  }
  std::size_t speculative_count() const noexcept {
    return speculative_.size();
  }

  /// Could load_invoke(id) complete right now without evicting a pinned
  /// function?  True on a hit; on a miss, checks the limit state in which
  /// every non-pinned resident is evicted — if the allocation strategy
  /// cannot place the function even then (pinned frames fragment the
  /// device), an overlapped load is illegal and the caller must serialize
  /// behind the fabric.  Pure query: no simulated time, no state change.
  bool load_feasible(memory::FunctionId id) const;

  /// Could a SPECULATIVE load of `id` be satisfied from free frames,
  /// other speculative residents, and demand residents that look DEAD?
  /// Stricter than load_feasible: a prefetch that would have to evict a
  /// live resident is a bad bet — it trades a probable future hit for a
  /// predicted one — and the pump skips it.  A resident counts as dead
  /// once its idle time exceeds both `min_idle` and `idle_factor` times
  /// its own mean inter-access gap (from the Frame Replacement Table), so
  /// a function touched every 100us dies in hundreds of microseconds while
  /// a slow 3ms cycle stays protected for multiples of that.  (LRU
  /// eviction consumes most-idle victims first, so when this probe passes
  /// the subsequent load evicts only the dead tail; fragmentation can in
  /// rare cases force one extra victim.)  Pure query.
  bool prefetch_feasible(memory::FunctionId id, sim::SimTime now,
                         sim::SimTime min_idle, double idle_factor) const;

  /// The load-cost model (see LoadEstimate).  Resident functions cost
  /// zero; a miss is modeled from its placement prediction — including the
  /// frames the delta tracker would skip there — through the engine's own
  /// pipeline recurrence, so on an eviction-free miss the estimate equals
  /// load_invoke's elapsed time exactly.
  LoadEstimate estimate_load(memory::FunctionId id) const;
  /// Shorthand: estimate_load(id).time.
  sim::SimTime estimated_load_cost(memory::FunctionId id) const {
    return estimate_load(id).time;
  }

  /// Explicitly evict a resident function (host-directed swap-out).
  void evict(memory::FunctionId id);

  /// Compact resident functions toward frame 0 by relocating them
  /// (re-streaming each from ROM — legal because bitstreams are
  /// slot-relative).  Leaves one contiguous free region.  Advances time.
  DefragResult defragment();

  /// Drop all resident functions and erase the fabric (device reset).
  void reset_fabric();

  // --- inspection ----------------------------------------------------------
  // is_resident / resident_count are O(log n) / O(1) map probes with no
  // simulated-time cost: the fleet's residency-affinity dispatch polls them
  // on every routing decision, mirroring a host driver that mirrors the
  // card's resident set from completion records.
  bool is_resident(memory::FunctionId id) const {
    return loaded_.contains(id);
  }
  std::size_t resident_count() const noexcept { return loaded_.size(); }
  std::vector<memory::FunctionId> resident_functions() const;
  /// The frames `id` currently occupies (empty when not resident) — the
  /// frame-set query the overlap legality check and its tests rest on.
  std::vector<fabric::FrameIndex> frames_of(memory::FunctionId id) const;
  const FrameReplacementTable& frame_table() const noexcept { return table_; }
  const FreeFrameList& free_frames() const noexcept { return free_list_; }
  const memory::RomImage& rom() const noexcept { return rom_; }
  memory::RomImage& rom() noexcept { return rom_; }
  /// The configuration engine (read-only): the invariant harness audits
  /// its delta frame-hash tracker against the fabric's actual contents.
  const ConfigEngine& engine() const noexcept { return engine_; }
  const memory::LocalRam& ram() const noexcept { return ram_; }
  /// Snapshot of this device's `mcu.*` registry counters.
  McuStats stats() const;
  ReplacementPolicy& policy() noexcept { return *policy_; }
  const McuConfig& config() const noexcept { return config_; }

 private:
  struct LoadedFunction {
    memory::RomRecord record;
    std::vector<fabric::FrameIndex> frames;
    // Netlist functions: the executable network, rebuilt from the
    // configuration plane on first use after (re)configuration.
    std::unique_ptr<netlist::LutNetwork> network;
    std::unique_ptr<netlist::LutExecutor> executor;
  };

  /// Placement prediction under delta reconfiguration: either the frames
  /// the free list would hand out, or an in-place upgrade — evict one
  /// same-footprint resident whose frames mostly already match and reuse
  /// its exact frame set.  nullopt when only the eviction loop can place
  /// the function.  Shared by load_at and estimate_load so the estimator
  /// predicts what the loader then does.
  struct DeltaPlan {
    std::vector<fabric::FrameIndex> frames;
    std::optional<memory::FunctionId> upgrade_victim;
    std::vector<bool> matched;  ///< per-window delta-skip prediction
    unsigned matched_count = 0;
  };
  std::optional<DeltaPlan> plan_placement(
      const memory::RomRecord& record) const;
  std::vector<bool> matched_windows(const memory::RomRecord& record,
                                    std::span<const fabric::FrameIndex> targets,
                                    unsigned* count) const;

  // Duration-returning primitives shared by the synchronous shims and the
  // staged path: mutate state, stamp trace spans at virtual times, never
  // touch the scheduler.
  sim::SimTime firmware_cost(unsigned cycles, sim::SimTime start);
  sim::SimTime evict_cost(memory::FunctionId id, sim::SimTime start);
  LoadResult load_at(memory::FunctionId id, sim::SimTime start,
                     sim::SimTime* elapsed);
  DefragResult defragment_at(sim::SimTime start);

  netlist::LutExecutor& executor_for(LoadedFunction& fn);

  fabric::Fabric& fabric_;
  sim::Scheduler& scheduler_;
  sim::Trace& trace_;
  const RuntimeRegistry& runtime_;
  McuConfig config_;

  memory::RomImage rom_;
  memory::LocalRam ram_;
  ConfigEngine engine_;
  FreeFrameList free_list_;
  std::unique_ptr<ReplacementPolicy> policy_;
  FrameReplacementTable table_;
  std::map<memory::FunctionId, LoadedFunction> loaded_;
  /// Pin reference counts; a function present here (count >= 1) is
  /// excluded from eviction.
  std::map<memory::FunctionId, unsigned> pinned_;
  /// Residents loaded speculatively (prefetch) and not yet demanded:
  /// preferred eviction victims — a demand miss steals their frames first.
  std::set<memory::FunctionId> speculative_;
  /// Per-window content hashes of every stored function's raw payload —
  /// host-driver metadata (no ROM bytes), matched against the engine's
  /// frame table to predict delta skips before streaming anything.
  std::map<memory::FunctionId, std::vector<std::uint64_t>> window_hashes_;
  /// Host-driver metadata for corruption recovery: the CRC-32 of each
  /// stored function's DECODED image (the engine verifies every load
  /// against it) and a pristine copy of the compressed stream (the
  /// re-fetch path reprograms the ROM from it after a CRC reject).
  std::map<memory::FunctionId, std::uint32_t> raw_crcs_;
  std::map<memory::FunctionId, Bytes> pristine_;
  std::uint32_t raw_crc_of(memory::FunctionId id) const {
    const auto it = raw_crcs_.find(id);
    return it != raw_crcs_.end() ? it->second : 0;
  }

  // Registry handles — the `mcu.*` counter block, registered once at
  // construction; stats() snapshots them back into McuStats.
  struct Counters {
    telemetry::Counter& invocations;
    telemetry::Counter& config_hits;
    telemetry::Counter& config_misses;
    telemetry::Counter& evictions;
    telemetry::Counter& frames_configured;
    telemetry::Counter& frames_skipped;
    telemetry::Counter& frames_skipped_delta;
    telemetry::Counter& allocation_retries;
    telemetry::Counter& defragmentations;
    telemetry::Counter& bytes_streamed;
    telemetry::Counter& crc_rejects;
    telemetry::Counter& refetches;
  };
  Counters counters_;
  /// Codec picks keep their map shape (keyed by enum, not a flat name).
  std::map<compress::CodecId, std::uint64_t> codec_picks_;
};

}  // namespace aad::mcu
