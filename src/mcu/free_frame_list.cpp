#include "mcu/free_frame_list.h"

#include <numeric>

#include "common/error.h"

namespace aad::mcu {

const char* to_string(AllocationStrategy strategy) noexcept {
  switch (strategy) {
    case AllocationStrategy::kFirstFitContiguous: return "first-fit";
    case AllocationStrategy::kBestFitContiguous: return "best-fit";
    case AllocationStrategy::kGatherScattered: return "gather";
  }
  return "?";
}

bool placement_possible(unsigned needed, AllocationStrategy strategy,
                        const std::vector<bool>& blocked) {
  if (strategy == AllocationStrategy::kGatherScattered) {
    // Scattered gathering only needs the total count.
    unsigned available = 0;
    for (const bool b : blocked)
      if (!b && ++available >= needed) return true;
    return false;
  }
  // Both contiguous strategies place iff some unblocked run fits.
  unsigned run = 0;
  for (const bool b : blocked) {
    run = b ? 0 : run + 1;
    if (run >= needed) return true;
  }
  return false;
}

FreeFrameList::FreeFrameList(unsigned frame_count)
    : free_(frame_count, true), free_frames_(frame_count) {
  AAD_REQUIRE(frame_count >= 1, "device must have at least one frame");
}

bool FreeFrameList::is_free(fabric::FrameIndex frame) const {
  AAD_REQUIRE(frame < free_.size(), "frame index out of range");
  return free_[frame];
}

std::optional<std::vector<fabric::FrameIndex>>
FreeFrameList::select_contiguous(unsigned count, bool best_fit) const {
  unsigned best_start = 0;
  unsigned best_len = 0;
  bool found = false;
  unsigned i = 0;
  const unsigned n = frame_count();
  while (i < n) {
    if (!free_[i]) {
      ++i;
      continue;
    }
    unsigned run_start = i;
    while (i < n && free_[i]) ++i;
    const unsigned run_len = i - run_start;
    if (run_len < count) continue;
    if (!found || (best_fit ? run_len < best_len : false)) {
      found = true;
      best_start = run_start;
      best_len = run_len;
      if (!best_fit) break;  // first fit: take the lowest run immediately
    }
  }
  if (!found) return std::nullopt;
  std::vector<fabric::FrameIndex> frames(count);
  std::iota(frames.begin(), frames.end(), best_start);
  return frames;
}

std::optional<std::vector<fabric::FrameIndex>> FreeFrameList::peek(
    unsigned count, AllocationStrategy strategy) const {
  AAD_REQUIRE(count >= 1, "allocation must request at least one frame");
  if (count > free_frames_) return std::nullopt;
  switch (strategy) {
    case AllocationStrategy::kFirstFitContiguous:
      return select_contiguous(count, /*best_fit=*/false);
    case AllocationStrategy::kBestFitContiguous:
      return select_contiguous(count, /*best_fit=*/true);
    case AllocationStrategy::kGatherScattered: {
      std::vector<fabric::FrameIndex> frames;
      frames.reserve(count);
      for (unsigned f = 0; f < free_.size() && frames.size() < count; ++f)
        if (free_[f]) frames.push_back(f);
      AAD_CHECK(frames.size() == count, "free counter out of sync");
      return frames;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<fabric::FrameIndex>> FreeFrameList::allocate(
    unsigned count, AllocationStrategy strategy) {
  auto frames = peek(count, strategy);
  if (frames) {
    for (fabric::FrameIndex f : *frames) free_[f] = false;
    free_frames_ -= count;
  }
  return frames;
}

void FreeFrameList::release(std::span<const fabric::FrameIndex> frames) {
  for (fabric::FrameIndex f : frames) {
    AAD_REQUIRE(f < free_.size(), "release of out-of-range frame");
    AAD_REQUIRE(!free_[f], "double release of frame " + std::to_string(f));
    free_[f] = true;
  }
  free_frames_ += static_cast<unsigned>(frames.size());
}

void FreeFrameList::claim(std::span<const fabric::FrameIndex> frames) {
  for (fabric::FrameIndex f : frames) {
    AAD_REQUIRE(f < free_.size(), "claim of out-of-range frame");
    AAD_REQUIRE(free_[f], "claim of occupied frame " + std::to_string(f));
  }
  for (fabric::FrameIndex f : frames) free_[f] = false;
  free_frames_ -= static_cast<unsigned>(frames.size());
}

void FreeFrameList::reset() {
  std::fill(free_.begin(), free_.end(), true);
  free_frames_ = frame_count();
}

unsigned FreeFrameList::largest_free_run() const noexcept {
  unsigned best = 0;
  unsigned run = 0;
  for (bool f : free_) {
    run = f ? run + 1 : 0;
    if (run > best) best = run;
  }
  return best;
}

unsigned FreeFrameList::free_run_count() const noexcept {
  unsigned runs = 0;
  bool in_run = false;
  for (bool f : free_) {
    if (f && !in_run) ++runs;
    in_run = f;
  }
  return runs;
}

double FreeFrameList::external_fragmentation() const noexcept {
  if (free_frames_ == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_run()) /
                   static_cast<double>(free_frames_);
}

}  // namespace aad::mcu
