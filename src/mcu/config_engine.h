// The configuration module (paper §2.3): "decompresses the compressed
// bit-stream window by window and passes the configuration bit-stream to
// the FPGA to configure it."
//
// One window = one frame.  The engine streams the record's compressed bytes
// out of ROM, pulls frame-sized windows from the codec's streaming
// decompressor, and writes each window into the fabric through the
// configuration port — verifying the payload CRC as it goes.
//
// Timing is a three-stage pipeline (ROM read | decompress | config port):
// window w's stage can start only when the same stage finished window w-1
// and the previous stage finished window w.  This is how the real module
// overlaps flash reads with SelectMAP writes, and it is what makes
// decompression nearly free for all but the slowest codecs (E2).
#pragma once

#include <span>
#include <vector>

#include "fabric/fabric.h"
#include "memory/rom.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace aad::mcu {

struct ConfigEngineConfig {
  /// Decompressor clock (the configuration module's logic).
  sim::Frequency engine_clock = sim::Frequency::mhz(66);
  /// Difference-based flow (the paper's ref [4], XAPP290): compare each
  /// decompressed window against the frame's current configuration and
  /// skip the config-port write when they already match.  Re-loading a
  /// function into the frames it occupied before eviction then costs only
  /// the ROM + decompress stages.  The compare itself costs
  /// `compare_cycles_per_byte` on the engine clock.
  bool difference_based = false;
  double compare_cycles_per_byte = 0.25;
};

struct ConfigureResult {
  sim::SimTime total;
  sim::SimTime rom_bound;         ///< sum of ROM-read stage times
  sim::SimTime decompress_bound;  ///< sum of decompress stage times
  sim::SimTime config_bound;      ///< sum of config-port stage times
  std::size_t frames_written = 0;
  std::size_t frames_skipped = 0; ///< difference-based matches
  std::size_t compressed_bytes = 0;
  std::size_t raw_bytes = 0;
};

class ConfigEngine {
 public:
  explicit ConfigEngine(const ConfigEngineConfig& config = {})
      : config_(config) {}

  /// Stream `record`'s payload from `rom` into `targets` (one frame per
  /// window, in logical order).  Returns the pipelined timing breakdown.
  /// Throws kCorruptData on CRC mismatch or malformed stream,
  /// kInvalidArgument when the record's footprint does not match `targets`.
  ConfigureResult configure(const memory::RomImage& rom,
                            const memory::RomRecord& record,
                            std::span<const fabric::FrameIndex> targets,
                            fabric::Fabric& fabric,
                            const memory::RomTiming& rom_timing,
                            sim::Trace* trace, sim::SimTime start);

 private:
  ConfigEngineConfig config_;
};

}  // namespace aad::mcu
