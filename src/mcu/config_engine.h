// The configuration module (paper §2.3): "decompresses the compressed
// bit-stream window by window and passes the configuration bit-stream to
// the FPGA to configure it."
//
// One window = one frame.  The engine streams the record's compressed bytes
// out of ROM, pulls frame-sized windows from the codec's streaming
// decompressor, and writes each window into the fabric through the
// configuration port — verifying the payload CRC as it goes.
//
// Timing is a three-stage pipeline (ROM read | decompress | config port):
// window w's stage can start only when the same stage finished window w-1
// and the previous stage finished window w.  This is how the real module
// overlaps flash reads with SelectMAP writes, and it is what makes
// decompression nearly free for all but the slowest codecs (E2).
#pragma once

#include <span>
#include <vector>

#include "fabric/fabric.h"
#include "memory/rom.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace aad::mcu {

struct ConfigEngineConfig {
  /// Decompressor clock (the configuration module's logic).
  sim::Frequency engine_clock = sim::Frequency::mhz(66);
  /// Difference-based flow (the paper's ref [4], XAPP290): compare each
  /// decompressed window against the frame's current configuration and
  /// skip the config-port write when they already match.  Re-loading a
  /// function into the frames it occupied before eviction then costs only
  /// the ROM + decompress stages.  The compare itself costs
  /// `compare_cycles_per_byte` on the engine clock.
  bool difference_based = false;
  double compare_cycles_per_byte = 0.25;
  /// Delta reconfiguration: the engine keeps a content hash per fabric
  /// frame (driver metadata — eviction frees frames but does not erase the
  /// fabric, so the record survives the function that wrote it).  A window
  /// whose target frame already holds exactly its content is skipped
  /// *entirely*: the provisioning-time window index lets the engine seek
  /// past that window's compressed span, so unlike difference_based the
  /// skip avoids the ROM and decompress stages too, and it matches across
  /// functions — an incremental variant of a resident function streams
  /// only its dirty frames.
  bool delta_reconfig = false;
  /// Per skipped window: frame-table lookup cost (engine cycles).
  double delta_check_cycles = 32.0;
};

struct ConfigureResult {
  sim::SimTime total;
  sim::SimTime rom_bound;         ///< sum of ROM-read stage times
  sim::SimTime decompress_bound;  ///< sum of decompress stage times
  sim::SimTime config_bound;      ///< sum of config-port stage times
  std::size_t frames_written = 0;
  std::size_t frames_skipped = 0; ///< all skipped port writes (both flows)
  std::size_t frames_skipped_delta = 0; ///< hash-tracked delta matches
  std::size_t compressed_bytes = 0; ///< full stream size in ROM
  /// Compressed bytes actually read from ROM: equals compressed_bytes
  /// except under delta_reconfig, where matched windows' spans are never
  /// fetched (apportioned evenly per window, like the ROM stage timing).
  std::size_t bytes_streamed = 0;
  std::size_t raw_bytes = 0;
};

/// FNV-1a fingerprint of one frame-sized window — the frame-table entry
/// delta reconfiguration tracks.  Never returns 0 (reserved for "unknown").
std::uint64_t window_content_hash(ByteSpan window) noexcept;

class ConfigEngine {
 public:
  explicit ConfigEngine(const ConfigEngineConfig& config = {})
      : config_(config) {}

  /// Stream `record`'s payload from `rom` into `targets` (one frame per
  /// window, in logical order).  Returns the pipelined timing breakdown.
  /// Throws kCorruptData on CRC mismatch or malformed stream,
  /// kInvalidArgument when the record's footprint does not match `targets`.
  ///
  /// The whole image is decoded and verified BEFORE the first frame is
  /// programmed: a corrupted bitstream is rejected cleanly — the fabric,
  /// the frame-hash tracker and the caller's bookkeeping are untouched —
  /// instead of leaving garbage frames behind a mid-stream failure.  When
  /// `expected_raw_crc` is nonzero it is checked (via common/crc32)
  /// against the full decoded image, catching decode divergence the
  /// compressed-payload CRC cannot see; zero skips the check (callers
  /// without provisioning-time metadata).
  ConfigureResult configure(const memory::RomImage& rom,
                            const memory::RomRecord& record,
                            std::span<const fabric::FrameIndex> targets,
                            fabric::Fabric& fabric,
                            const memory::RomTiming& rom_timing,
                            sim::Trace* trace, sim::SimTime start,
                            std::uint32_t expected_raw_crc = 0);

  const ConfigEngineConfig& config() const noexcept { return config_; }

  /// Content hash last streamed into frame `f` (0 = unknown).  Tracked
  /// only while delta_reconfig is on.
  std::uint64_t frame_hash(fabric::FrameIndex f) const noexcept {
    return f < frame_hashes_.size() ? frame_hashes_[f] : 0;
  }

  /// Forget every tracked frame (device erase — the fabric no longer holds
  /// what the table says it does).
  void reset_tracking() noexcept { frame_hashes_.clear(); }

  /// Closed-form mirror of configure()'s pipeline recurrence for a
  /// hypothetical load: `skip[w]` marks windows predicted to delta-match
  /// (empty = none).  Shared by Mcu::estimate_load and the auto-codec
  /// pick so planning can never drift from execution.
  sim::SimTime estimate_time(std::size_t compressed_bytes, unsigned frames,
                             compress::CodecId codec, std::size_t frame_bytes,
                             sim::SimTime frame_time,
                             const memory::RomTiming& rom_timing,
                             const std::vector<bool>& skip = {}) const;

 private:
  ConfigEngineConfig config_;
  std::vector<std::uint64_t> frame_hashes_;
};

}  // namespace aad::mcu
