#include "mcu/runtime.h"

#include "common/error.h"

namespace aad::mcu {

void RuntimeRegistry::register_netlist_driver(std::uint32_t kernel_id,
                                              NetlistDriver driver) {
  AAD_REQUIRE(driver != nullptr, "null netlist driver");
  const auto [it, inserted] = netlist_.emplace(kernel_id, std::move(driver));
  (void)it;
  AAD_REQUIRE(inserted, "netlist driver already registered");
}

void RuntimeRegistry::register_behavioral(std::uint32_t kernel_id,
                                          BehavioralModel model) {
  AAD_REQUIRE(model.compute != nullptr && model.cycles != nullptr,
              "behavioral model incomplete");
  const auto [it, inserted] = behavioral_.emplace(kernel_id, std::move(model));
  (void)it;
  AAD_REQUIRE(inserted, "behavioral model already registered");
}

bool RuntimeRegistry::has_netlist_driver(std::uint32_t kernel_id) const {
  return netlist_.contains(kernel_id);
}

const NetlistDriver& RuntimeRegistry::netlist_driver(
    std::uint32_t kernel_id) const {
  const auto it = netlist_.find(kernel_id);
  AAD_REQUIRE(it != netlist_.end(),
              "no netlist driver for kernel " + std::to_string(kernel_id));
  return it->second;
}

const BehavioralModel& RuntimeRegistry::behavioral(
    std::uint32_t kernel_id) const {
  const auto it = behavioral_.find(kernel_id);
  AAD_REQUIRE(it != behavioral_.end(),
              "no behavioral model for kernel " + std::to_string(kernel_id));
  return it->second;
}

std::vector<bool> bytes_to_bits(ByteSpan bytes, std::size_t bit_count) {
  std::vector<bool> bits(bit_count, false);
  for (std::size_t i = 0; i < bit_count; ++i) {
    const std::size_t byte = i / 8;
    if (byte < bytes.size()) bits[i] = (bytes[byte] >> (i % 8)) & 1u;
  }
  return bits;
}

Bytes bits_to_bytes(const std::vector<bool>& bits) {
  Bytes out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) out[i / 8] = static_cast<Byte>(out[i / 8] | (1u << (i % 8)));
  return out;
}

HardwareResult RuntimeRegistry::run_combinational(
    netlist::LutExecutor& executor, ByteSpan input, std::size_t input_width,
    std::size_t output_width) {
  AAD_REQUIRE(input.size() * 8 <= ((input_width + 7) / 8) * 8,
              "input larger than the function's input bus");
  const auto in_bits = bytes_to_bits(input, input_width);
  const auto out_bits = executor.step(in_bits);
  AAD_CHECK(out_bits.size() == output_width, "output bus width drifted");
  return HardwareResult{bits_to_bytes(out_bits), 1};
}

}  // namespace aad::mcu
