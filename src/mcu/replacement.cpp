#include "mcu/replacement.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace aad::mcu {

const char* to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kLfu: return "lfu";
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kBelady: return "belady";
  }
  return "?";
}

void ReplacementPolicy::set_future(std::vector<FunctionId> /*future*/) {}

namespace {

/// LRU straight from the Frame Replacement Table's timestamps.
class LruPolicy final : public ReplacementPolicy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kLru; }
  std::string name() const override { return "lru"; }
  void on_load(FunctionId, sim::SimTime) override {}
  void on_access(FunctionId, sim::SimTime) override {}
  void on_evict(FunctionId) override {}

  FunctionId choose_victim(std::span<const FunctionId> resident,
                           const FrameReplacementTable& table) override {
    AAD_REQUIRE(!resident.empty(), "no resident function to evict");
    FunctionId victim = resident[0];
    sim::SimTime oldest = sim::SimTime::ps(
        std::numeric_limits<std::int64_t>::max());
    for (FunctionId fn : resident) {
      const auto it = table.find(fn);
      AAD_CHECK(it != table.end(), "resident function missing from table");
      if (it->second.last_access < oldest) {
        oldest = it->second.last_access;
        victim = fn;
      }
    }
    return victim;
  }
};

class FifoPolicy final : public ReplacementPolicy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kFifo; }
  std::string name() const override { return "fifo"; }
  void on_load(FunctionId fn, sim::SimTime) override { order_.push_back(fn); }
  void on_access(FunctionId, sim::SimTime) override {}
  void on_evict(FunctionId fn) override {
    order_.erase(std::remove(order_.begin(), order_.end(), fn), order_.end());
  }

  FunctionId choose_victim(std::span<const FunctionId> resident,
                           const FrameReplacementTable&) override {
    for (FunctionId fn : order_)
      if (std::find(resident.begin(), resident.end(), fn) != resident.end())
        return fn;
    AAD_FAIL(ErrorCode::kInternal, "FIFO order lost track of residents");
  }

 private:
  std::vector<FunctionId> order_;
};

class LfuPolicy final : public ReplacementPolicy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kLfu; }
  std::string name() const override { return "lfu"; }
  void on_load(FunctionId, sim::SimTime) override {}
  void on_access(FunctionId, sim::SimTime) override {}
  void on_evict(FunctionId) override {}

  FunctionId choose_victim(std::span<const FunctionId> resident,
                           const FrameReplacementTable& table) override {
    AAD_REQUIRE(!resident.empty(), "no resident function to evict");
    FunctionId victim = resident[0];
    std::uint64_t fewest = std::numeric_limits<std::uint64_t>::max();
    sim::SimTime oldest = sim::SimTime::ps(
        std::numeric_limits<std::int64_t>::max());
    for (FunctionId fn : resident) {
      const auto it = table.find(fn);
      AAD_CHECK(it != table.end(), "resident function missing from table");
      const auto& e = it->second;
      // Tie-break equal frequencies by LRU so behaviour is deterministic.
      if (e.access_count < fewest ||
          (e.access_count == fewest && e.last_access < oldest)) {
        fewest = e.access_count;
        oldest = e.last_access;
        victim = fn;
      }
    }
    return victim;
  }
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  PolicyKind kind() const noexcept override { return PolicyKind::kRandom; }
  std::string name() const override { return "random"; }
  void on_load(FunctionId, sim::SimTime) override {}
  void on_access(FunctionId, sim::SimTime) override {}
  void on_evict(FunctionId) override {}

  FunctionId choose_victim(std::span<const FunctionId> resident,
                           const FrameReplacementTable&) override {
    AAD_REQUIRE(!resident.empty(), "no resident function to evict");
    return resident[rng_.next_below(resident.size())];
  }

 private:
  Prng rng_;
};

/// Clairvoyant: evict the resident whose next use is farthest away (or
/// never).  Tracks its own position in the provided future trace via
/// on_access calls.
class BeladyPolicy final : public ReplacementPolicy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kBelady; }
  std::string name() const override { return "belady"; }

  void set_future(std::vector<FunctionId> future) override {
    future_ = std::move(future);
    cursor_ = 0;
  }

  void on_load(FunctionId, sim::SimTime) override {}
  void on_access(FunctionId fn, sim::SimTime) override {
    // Keep the cursor in lock-step with the request stream.
    if (cursor_ < future_.size() && future_[cursor_] == fn) ++cursor_;
  }
  void on_evict(FunctionId) override {}

  FunctionId choose_victim(std::span<const FunctionId> resident,
                           const FrameReplacementTable&) override {
    AAD_REQUIRE(!resident.empty(), "no resident function to evict");
    FunctionId victim = resident[0];
    std::size_t farthest = 0;
    for (FunctionId fn : resident) {
      std::size_t next = future_.size() + 1;  // "never used again"
      for (std::size_t i = cursor_; i < future_.size(); ++i) {
        if (future_[i] == fn) {
          next = i;
          break;
        }
      }
      if (next > farthest) {
        farthest = next;
        victim = fn;
      }
    }
    return victim;
  }

 private:
  std::vector<FunctionId> future_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind,
                                               std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruPolicy>();
    case PolicyKind::kFifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::kLfu: return std::make_unique<LfuPolicy>();
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>(seed);
    case PolicyKind::kBelady: return std::make_unique<BeladyPolicy>();
  }
  AAD_FAIL(ErrorCode::kInvalidArgument, "unknown policy kind");
}

}  // namespace aad::mcu
