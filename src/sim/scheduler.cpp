#include "sim/scheduler.h"

#include <cstdio>

#include "common/error.h"

namespace aad::sim {

std::string to_string(SimTime t) {
  char buf[64];
  const double ps = static_cast<double>(t.picoseconds());
  if (ps >= 1e12) std::snprintf(buf, sizeof buf, "%.3f s", ps * 1e-12);
  else if (ps >= 1e9) std::snprintf(buf, sizeof buf, "%.3f ms", ps * 1e-9);
  else if (ps >= 1e6) std::snprintf(buf, sizeof buf, "%.3f us", ps * 1e-6);
  else if (ps >= 1e3) std::snprintf(buf, sizeof buf, "%.3f ns", ps * 1e-3);
  else std::snprintf(buf, sizeof buf, "%.0f ps", ps);
  return buf;
}

EventId Scheduler::schedule_at(SimTime when, Action action) {
  AAD_REQUIRE(when >= now_, "cannot schedule an event in the past");
  const EventId id = next_sequence_++;
  queue_.push(EventKey{when, id});
  actions_.emplace(id, std::move(action));
  return id;
}

bool Scheduler::cancel(EventId id) {
  // The heap keeps the cancelled key until its timestamp drains; only the
  // action (and everything it captured) is released here.
  return actions_.erase(id) != 0;
}

void Scheduler::advance(SimTime delay) {
  AAD_REQUIRE(delay >= SimTime::zero(), "cannot advance time backwards");
  // Any events that would fire during the advanced window run first, so a
  // mixed analytic/event model stays causally ordered.
  const SimTime target = now_ + delay;
  run_until(target);
}

std::size_t Scheduler::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const EventKey key = queue_.top();
    queue_.pop();
    const auto it = actions_.find(key.sequence);
    if (it == actions_.end()) continue;  // cancelled: skip, no time advance
    // Move out before erasing: the action may schedule more events.
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = key.when;
    action();
    ++executed;
  }
  return executed;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    const EventKey key = queue_.top();
    queue_.pop();
    const auto it = actions_.find(key.sequence);
    if (it == actions_.end()) continue;  // cancelled: skip, no time advance
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = key.when;
    action();
    ++executed;
  }
  if (deadline > now_) now_ = deadline;
  return executed;
}

void Scheduler::clear() {
  while (!queue_.empty()) queue_.pop();
  actions_.clear();
}

}  // namespace aad::sim
