#include "sim/scheduler.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace aad::sim {

namespace {
/// Tombstones below this count never trigger compaction: rebuilding a tiny
/// heap costs more than letting the dead keys drain naturally.
constexpr std::size_t kCompactionFloor = 64;
}  // namespace

std::string to_string(SimTime t) {
  char buf[64];
  const double ps = static_cast<double>(t.picoseconds());
  if (ps >= 1e12) std::snprintf(buf, sizeof buf, "%.3f s", ps * 1e-12);
  else if (ps >= 1e9) std::snprintf(buf, sizeof buf, "%.3f ms", ps * 1e-9);
  else if (ps >= 1e6) std::snprintf(buf, sizeof buf, "%.3f us", ps * 1e-6);
  else if (ps >= 1e3) std::snprintf(buf, sizeof buf, "%.3f ns", ps * 1e-3);
  else std::snprintf(buf, sizeof buf, "%.0f ps", ps);
  return buf;
}

EventId Scheduler::schedule_at(SimTime when, Action action) {
  AAD_REQUIRE(when >= now_, "cannot schedule an event in the past");
  const EventId id = next_sequence_++;
  heap_.push_back(EventKey{when, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  actions_.emplace(id, std::move(action));
  return id;
}

bool Scheduler::cancel(EventId id) {
  // Lazy cancellation: only the action (and everything it captured) is
  // released here; the heap key becomes a tombstone.
  if (actions_.erase(id) == 0) return false;
  ++tombstones_;
  maybe_compact();
  return true;
}

void Scheduler::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

void Scheduler::maybe_compact() {
  if (tombstones_ <= kCompactionFloor || tombstones_ <= actions_.size())
    return;
  // Keep only keys whose action is still live, then re-heapify.  Relative
  // pop order is untouched — (when, sequence) is a total order, so the
  // rebuilt heap drains in exactly the sequence the old one would have.
  auto live_end = std::remove_if(
      heap_.begin(), heap_.end(), [this](const EventKey& key) {
        return actions_.find(key.sequence) == actions_.end();
      });
  heap_.erase(live_end, heap_.end());
  heap_.shrink_to_fit();
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  tombstones_ = 0;
}

void Scheduler::advance(SimTime delay) {
  AAD_REQUIRE(delay >= SimTime::zero(), "cannot advance time backwards");
  // Any events that would fire during the advanced window run first, so a
  // mixed analytic/event model stays causally ordered.
  const SimTime target = now_ + delay;
  run_until(target);
}

std::size_t Scheduler::run() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    const EventKey key = heap_.front();
    pop_top();
    const auto it = actions_.find(key.sequence);
    if (it == actions_.end()) {  // cancelled: skip, no time advance
      if (tombstones_ > 0) --tombstones_;
      continue;
    }
    // Move out before erasing: the action may schedule more events.
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = key.when;
    action();
    ++executed;
  }
  return executed;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().when <= deadline) {
    const EventKey key = heap_.front();
    pop_top();
    const auto it = actions_.find(key.sequence);
    if (it == actions_.end()) {  // cancelled: skip, no time advance
      if (tombstones_ > 0) --tombstones_;
      continue;
    }
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = key.when;
    action();
    ++executed;
  }
  if (deadline > now_) now_ = deadline;
  return executed;
}

std::size_t Scheduler::run_before(SimTime horizon) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().when < horizon) {
    const EventKey key = heap_.front();
    pop_top();
    const auto it = actions_.find(key.sequence);
    if (it == actions_.end()) {  // cancelled: skip, no time advance
      if (tombstones_ > 0) --tombstones_;
      continue;
    }
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = key.when;
    action();
    ++executed;
  }
  return executed;
}

std::optional<SimTime> Scheduler::next_time() {
  // Dead keys on top carry no information; shed them so the reported next
  // timestamp is a live event the caller can actually wait for.
  while (!heap_.empty() &&
         actions_.find(heap_.front().sequence) == actions_.end()) {
    pop_top();
    if (tombstones_ > 0) --tombstones_;
  }
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

void Scheduler::clear() {
  heap_.clear();
  actions_.clear();
  tombstones_ = 0;
}

}  // namespace aad::sim
