#include "sim/scheduler.h"

#include <cstdio>

#include "common/error.h"

namespace aad::sim {

std::string to_string(SimTime t) {
  char buf[64];
  const double ps = static_cast<double>(t.picoseconds());
  if (ps >= 1e12) std::snprintf(buf, sizeof buf, "%.3f s", ps * 1e-12);
  else if (ps >= 1e9) std::snprintf(buf, sizeof buf, "%.3f ms", ps * 1e-9);
  else if (ps >= 1e6) std::snprintf(buf, sizeof buf, "%.3f us", ps * 1e-6);
  else if (ps >= 1e3) std::snprintf(buf, sizeof buf, "%.3f ns", ps * 1e-3);
  else std::snprintf(buf, sizeof buf, "%.0f ps", ps);
  return buf;
}

void Scheduler::schedule_at(SimTime when, Action action) {
  AAD_REQUIRE(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_sequence_++, std::move(action)});
}

void Scheduler::advance(SimTime delay) {
  AAD_REQUIRE(delay >= SimTime::zero(), "cannot advance time backwards");
  // Any events that would fire during the advanced window run first, so a
  // mixed analytic/event model stays causally ordered.
  const SimTime target = now_ + delay;
  run_until(target);
}

std::size_t Scheduler::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Copy out before pop: the action may schedule more events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.action();
    ++executed;
  }
  return executed;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.action();
    ++executed;
  }
  if (deadline > now_) now_ = deadline;
  return executed;
}

void Scheduler::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace aad::sim
