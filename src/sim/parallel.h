// Conservative parallel discrete-event engine.
//
// A ParallelScheduler owns one coordination Scheduler ("coord") plus N
// shard Schedulers, one per simulated card.  Ownership is the whole
// synchronization story:
//
//   * Shard i's events are the card-local pipeline (PCI transfers, config
//     engine, fabric execution, MCU firmware).  They may freely read and
//     write card i's state and may send messages to the coordinator via
//     post_to_coord(); they must never touch another card.
//   * Coordination events are everything cross-card: fleet dispatch and
//     routing reads, open-batch queries, refugee re-dispatch on card
//     death, retry-watchdog timers, fault-plan injections.  They run only
//     on the driving thread, at instants when every shard has been run up
//     to (or past) the coordination timestamp — so routing reads observe
//     exactly the state the classic single-queue engine would have shown.
//
// Execution proceeds in bulk-synchronous rounds.  Each iteration the
// driver computes Tc (earliest coordination event) and Ec (earliest card
// event across all shards):
//
//   * If Tc <= Ec (or no card work remains), the coordinator runs its
//     whole <= Tc batch inline.  All shards are parked at >= Tc-adjacent
//     history, so cross-card reads are exact, not snapshots.
//   * Otherwise the shards run one parallel round bounded by the horizon
//     H = min(Tc, Ec + lookahead): a worker pool (threads - 1 workers plus
//     the driving thread) pulls ready shards off a shared index and runs
//     each with Scheduler::run_before(H).  No card event below H can be
//     affected by a coordination event (all of those are >= Tc >= H) or by
//     another card (cards only interact through the coordinator), so the
//     round is conservative in the classic Chandy–Misra–Bryant sense.
//
// The lookahead is the minimum latency between a coordination decision
// and its first card-visible consequence; the fleet derives it from the
// PCI command-setup cost.  Messages posted during a round land in
// per-shard outboxes and are merged into the coordinator between rounds
// in (when, source shard, per-source posting order) order — a total order
// independent of thread interleaving, which is what makes a run
// deterministic for any worker count, including the distribution of
// shards over workers.
//
// With threads == 1 the pool is never spawned and rounds run inline on
// the driving thread; event pop order is then identical to the classic
// engine restricted to each scheduler.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sim/scheduler.h"
#include "sim/time.h"

namespace aad::sim {

class ParallelScheduler {
 public:
  /// `shards` card queues driven by `threads` host threads (clamped to
  /// [1, shards]); `lookahead` must be > 0 — it is the only window in
  /// which card shards may run ahead of each other.
  ParallelScheduler(unsigned shards, unsigned threads, SimTime lookahead);
  ~ParallelScheduler();

  ParallelScheduler(const ParallelScheduler&) = delete;
  ParallelScheduler& operator=(const ParallelScheduler&) = delete;

  /// The coordination queue.  Host code (fleet submit paths, fault plans)
  /// schedules cross-card work here directly between run() calls.
  Scheduler& coord() noexcept { return coord_; }
  const Scheduler& coord() const noexcept { return coord_; }

  /// Card `index`'s private queue — hand this to the card at construction.
  Scheduler& shard(unsigned index);

  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  unsigned threads() const noexcept { return threads_; }
  SimTime lookahead() const noexcept { return lookahead_; }
  /// Retarget the lookahead before the first run (the fleet derives it
  /// from card timing that only exists after the cards are built).
  void set_lookahead(SimTime lookahead);

  /// Send work to the coordinator from inside a shard event (worker
  /// thread safe: each shard's outbox is only touched by the thread
  /// currently running that shard).  `when` must be >= the shard's clock;
  /// delivery order is deterministic: (when, source, posting order).
  void post_to_coord(unsigned source, SimTime when, Scheduler::Action action);

  /// Run rounds until every queue and outbox drains.  Returns events
  /// executed (coordination + card, cancelled events excluded).
  std::size_t run();

  /// Run events with timestamp <= `deadline`; afterwards every clock
  /// reads max(now, deadline), mirroring Scheduler::run_until.
  std::size_t run_until(SimTime deadline);

  /// Global clock: the furthest-ahead queue.  Between run() calls all
  /// clocks agree (sync_clocks runs at the end of every drain).
  SimTime now() const noexcept;

  bool idle() const noexcept;
  /// Live pending events across coord + all shards (+ undelivered
  /// outbox messages).
  std::size_t pending() const noexcept;

  /// Advance every queue's clock to the global now().  Only legal when no
  /// queue holds an event below that time (e.g. during serialized
  /// provisioning); run()/run_until() call it automatically on exit.
  void sync_clocks();

  /// Parallel card rounds executed so far (telemetry).
  std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  /// Cross-shard message, ordered by (when, source, seq) at delivery.
  struct Message {
    SimTime when;
    unsigned source;
    std::uint64_t seq;
    Scheduler::Action action;
  };
  /// Heap-allocated so Scheduler addresses stay stable for the cards.
  struct Shard {
    Scheduler scheduler;
    std::vector<Message> outbox;
    std::uint64_t next_message_seq = 0;
    std::size_t round_executed = 0;
  };

  std::size_t drain(const SimTime* deadline);
  /// Move every outbox into the coordination queue in deterministic order.
  void deliver_messages();
  /// Run the shards listed in round_shards_ up to round_horizon_,
  /// fanning out over the pool when it exists.  Returns events executed.
  std::size_t execute_round();
  /// Claim-and-run loop shared by workers and the driving thread.
  void work_round();
  void worker_loop();

  SimTime lookahead_;
  unsigned threads_;
  bool started_ = false;  ///< first round ran; lookahead is frozen
  std::uint64_t rounds_ = 0;
  Scheduler coord_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Message> mailbox_;  ///< merge scratch, reused across rounds

  // Worker pool: generation-counted barrier.  The driving thread
  // publishes a round (horizon + ready-shard list) under pool_mutex_,
  // bumps generation_, and participates; workers claim shard indices via
  // the atomic cursor.  All shard state written in a round is published
  // to the driving thread by the final unfinished_ handshake.
  std::vector<std::thread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  std::uint64_t generation_ = 0;
  std::size_t unfinished_ = 0;
  bool stopping_ = false;
  SimTime round_horizon_;
  std::vector<unsigned> round_shards_;
  std::atomic<std::size_t> round_cursor_{0};
  std::exception_ptr round_error_;  ///< first failure, rethrown on driver
};

}  // namespace aad::sim
