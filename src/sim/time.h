// Simulated time.  All component timing models express latency as SimTime
// (integer picoseconds) so that accumulation across a multi-second workload
// never loses precision.  Frequencies convert tick counts to durations.
#pragma once

#include <cstdint>
#include <string>

namespace aad::sim {

/// A point in (or duration of) simulated time, in picoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime ps(std::int64_t v) noexcept { return SimTime{v}; }
  static constexpr SimTime ns(double v) noexcept {
    return SimTime{static_cast<std::int64_t>(v * 1e3)};
  }
  static constexpr SimTime us(double v) noexcept {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }
  static constexpr SimTime ms(double v) noexcept {
    return SimTime{static_cast<std::int64_t>(v * 1e9)};
  }
  static constexpr SimTime s(double v) noexcept {
    return SimTime{static_cast<std::int64_t>(v * 1e12)};
  }
  static constexpr SimTime zero() noexcept { return SimTime{0}; }

  constexpr std::int64_t picoseconds() const noexcept { return ps_; }
  constexpr double nanoseconds() const noexcept { return static_cast<double>(ps_) * 1e-3; }
  constexpr double microseconds() const noexcept { return static_cast<double>(ps_) * 1e-6; }
  constexpr double milliseconds() const noexcept { return static_cast<double>(ps_) * 1e-9; }
  constexpr double seconds() const noexcept { return static_cast<double>(ps_) * 1e-12; }

  constexpr SimTime operator+(SimTime other) const noexcept { return SimTime{ps_ + other.ps_}; }
  constexpr SimTime operator-(SimTime other) const noexcept { return SimTime{ps_ - other.ps_}; }
  constexpr SimTime operator*(std::int64_t k) const noexcept { return SimTime{ps_ * k}; }
  constexpr SimTime& operator+=(SimTime other) noexcept { ps_ += other.ps_; return *this; }
  constexpr SimTime& operator-=(SimTime other) noexcept { ps_ -= other.ps_; return *this; }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(std::int64_t v) noexcept : ps_(v) {}
  std::int64_t ps_ = 0;
};

/// Format as the most natural unit ("12.5 us").
std::string to_string(SimTime t);

/// A clock frequency; converts cycle counts into SimTime.
class Frequency {
 public:
  static constexpr Frequency mhz(double v) noexcept { return Frequency{v * 1e6}; }
  static constexpr Frequency khz(double v) noexcept { return Frequency{v * 1e3}; }
  static constexpr Frequency hz(double v) noexcept { return Frequency{v}; }

  constexpr double hertz() const noexcept { return hz_; }

  /// Duration of one clock period.
  constexpr SimTime period() const noexcept {
    return SimTime::ps(static_cast<std::int64_t>(1e12 / hz_));
  }

  /// Duration of `n` cycles.
  constexpr SimTime cycles(std::int64_t n) const noexcept {
    return SimTime::ps(static_cast<std::int64_t>(1e12 / hz_) * n);
  }

 private:
  constexpr explicit Frequency(double hz) noexcept : hz_(hz) {}
  double hz_ = 1e6;
};

}  // namespace aad::sim
