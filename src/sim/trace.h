// Activity trace: timestamped spans recorded by components (PCI transfer,
// ROM read, decompression, configuration, kernel execution).  Experiments
// aggregate these to attribute end-to-end latency to pipeline stages.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace aad::sim {

/// Pipeline stages of Figure 1 of the paper, used as span categories.
enum class Stage : std::uint8_t {
  kHostPci,     ///< host <-> microcontroller PCI transfer
  kRom,         ///< ROM record/bit-stream access
  kRam,         ///< local RAM buffering
  kDecompress,  ///< configuration-module window decompression
  kConfigure,   ///< FPGA configuration-port writes
  kDataIn,      ///< data-input module transfers
  kExecute,     ///< function execution on the fabric
  kDataOut,     ///< output-collection module transfers
  kFirmware,    ///< mini-OS bookkeeping (free-frame list, replacement)
};

const char* to_string(Stage stage) noexcept;

struct Span {
  Stage stage;
  std::string label;
  SimTime begin;
  SimTime end;

  SimTime duration() const noexcept { return end - begin; }
};

class Trace {
 public:
  void record(Stage stage, std::string label, SimTime begin, SimTime end);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  void clear() noexcept { spans_.clear(); }
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Total time attributed to each stage (overlap not deduplicated; the
  /// configuration pipeline is reported per stage on purpose).
  std::map<Stage, SimTime> stage_totals() const;

  /// Multi-line human-readable report.
  std::string summary() const;

 private:
  bool enabled_ = true;
  std::vector<Span> spans_;
};

}  // namespace aad::sim
