// Discrete-event scheduler.
//
// The MCU firmware model, PCI bus and configuration pipeline sequence their
// work by posting events here.  Events at the same timestamp run in posting
// order (stable), which keeps simulations deterministic.
//
// schedule_at returns an EventId that cancel() can retire before it fires:
// the fault-injection machinery (a fleet cancelling a dead card's pending
// pipeline events, a timeout watchdog disarmed by its request's completion)
// needs pending work to be revocable.  Cancellation releases the event's
// callback immediately — a cancelled event must not keep its captured
// state (request payloads, completion hooks) alive until its timestamp
// drains — and a cancelled slot is skipped without advancing time or
// counting as executed.
//
// Cancellation is lazy: the heap keeps a dead EventKey (a "tombstone")
// until its timestamp drains.  Fault-heavy runs arm one watchdog per
// request and disarm almost all of them, so tombstones would otherwise
// accumulate one per request; cancel() therefore compacts the heap once
// tombstones outnumber live events (and exceed a small floor), keeping the
// heap O(live events) regardless of cancel churn.
//
// One Scheduler is single-owner state: it is either driven directly
// (classic single-threaded mode) or owned by one shard of a
// sim::ParallelScheduler, which guarantees at most one thread touches it
// at a time.  There is no internal locking.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace aad::sim {

/// Handle to a scheduled-but-not-yet-fired event (dense, never reused).
using EventId = std::uint64_t;

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `when` (>= now).  The returned id
  /// stays valid until the event fires or is cancelled.
  EventId schedule_at(SimTime when, Action action);

  /// Schedule `action` `delay` after the current time.
  EventId schedule_after(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Retire a pending event: its callback is destroyed now and the slot is
  /// skipped when its timestamp drains.  Returns false when the event
  /// already fired or was already cancelled (both harmless), so callers can
  /// disarm unconditionally.
  bool cancel(EventId id);

  /// Advance time without running events (used by analytic latency models
  /// that fold a whole operation into one duration).
  void advance(SimTime delay);

  /// Run events until the queue drains.  Returns the number executed
  /// (cancelled events are skipped, not counted).
  std::size_t run();

  /// Run events with timestamp <= `deadline`; time ends at
  /// max(now, deadline) even if the queue drained earlier.
  std::size_t run_until(SimTime deadline);

  /// Run events with timestamp strictly < `horizon`, leaving `now()` at the
  /// last executed event (NOT advanced to the horizon).  This is the
  /// bounded-round primitive of the parallel engine: a shard may only burn
  /// down work it provably owns, and its clock must keep reporting real
  /// progress so the coordinator can compute the next safe horizon.
  std::size_t run_before(SimTime horizon);

  /// Timestamp of the earliest live event, or nullopt when idle.  Pops any
  /// dead keys sitting on top of the heap as a side effect.
  std::optional<SimTime> next_time();

  bool idle() const noexcept { return actions_.empty(); }
  /// Live (not cancelled) pending events.
  std::size_t pending() const noexcept { return actions_.size(); }
  /// Heap slots currently held, live + tombstones (compaction telemetry).
  std::size_t heap_size() const noexcept { return heap_.size(); }

  /// Drop all pending events (device reset).
  void clear();

 private:
  /// Ordering key only; the action lives in actions_ so cancel() can
  /// release it without disturbing the heap.
  struct EventKey {
    SimTime when;
    std::uint64_t sequence;
  };
  struct Later {
    bool operator()(const EventKey& a, const EventKey& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;  // stable FIFO among equal timestamps
    }
  };

  /// Pop the heap top; the caller already holds a copy of it.
  void pop_top();
  /// Rebuild the heap with live keys only once tombstones dominate.
  void maybe_compact();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_sequence_ = 0;
  std::vector<EventKey> heap_;  ///< binary heap (std::push_heap/pop_heap)
  std::size_t tombstones_ = 0;  ///< cancelled keys still parked in heap_
  std::unordered_map<std::uint64_t, Action> actions_;  ///< live events
};

}  // namespace aad::sim
