// Discrete-event scheduler.
//
// The MCU firmware model, PCI bus and configuration pipeline sequence their
// work by posting events here.  Events at the same timestamp run in posting
// order (stable), which keeps simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace aad::sim {

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `when` (>= now).
  void schedule_at(SimTime when, Action action);

  /// Schedule `action` `delay` after the current time.
  void schedule_after(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Advance time without running events (used by analytic latency models
  /// that fold a whole operation into one duration).
  void advance(SimTime delay);

  /// Run events until the queue drains.  Returns the number executed.
  std::size_t run();

  /// Run events with timestamp <= `deadline`; time ends at
  /// max(now, deadline) even if the queue drained earlier.
  std::size_t run_until(SimTime deadline);

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Drop all pending events (device reset).
  void clear();

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;  // stable FIFO among equal timestamps
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace aad::sim
