// Declarative fault plans for the simulated fleet.
//
// A FaultPlan is pure data: a schedule of hardware misbehavior — cards
// dying and recovering, ROM payloads taking bit flips — that the
// core::CoprocessorFleet arms against its shared clock when the first
// request is submitted (times are relative to that first submission, so
// provisioning time never shifts a plan).  Plans are either hand-written
// (targeted regression tests) or drawn from a seeded generator
// (make_random_fault_plan — the property-based invariant harness sweeps
// hundreds of them).  The sim layer knows nothing about cards or ROMs;
// plain indices and ids keep the dependency arrow pointing upward.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace aad::sim {

/// One card death: the card drops off the bus at `at`; if `recover_at` is
/// later, it powers back up then with a cold fabric (otherwise it stays
/// dead for the rest of the run).
struct CardDeath {
  unsigned card = 0;
  SimTime at;
  SimTime recover_at;  ///< <= at means the card never recovers
};

/// One ROM corruption: flip `bit_flips` payload bits of `function` on
/// `card` at time `at` (seeded, so the damage is reproducible).
struct RomCorruption {
  unsigned card = 0;
  std::uint32_t function = 0;
  SimTime at;
  std::uint64_t seed = 1;
  unsigned bit_flips = 8;
};

struct FaultPlan {
  std::vector<CardDeath> deaths;
  std::vector<RomCorruption> corruptions;

  bool empty() const noexcept { return deaths.empty() && corruptions.empty(); }
};

/// Knobs for the seeded plan generator.  Death arrivals are Poisson per
/// card (exponential inter-death gaps at `death_rate_per_ms`), downtimes
/// exponential with mean `mean_downtime`, both clipped to `horizon`;
/// corruptions are Poisson per card over the `functions` bank.
struct RandomFaultConfig {
  std::uint64_t seed = 1;
  unsigned cards = 4;
  SimTime horizon = SimTime::ms(20);   ///< plan covers [0, horizon)
  double death_rate_per_ms = 0.01;     ///< per card, per simulated ms
  SimTime mean_downtime = SimTime::ms(1);
  double corruption_rate_per_ms = 0.0;  ///< per card, per simulated ms
  std::vector<std::uint32_t> functions; ///< corruption targets (ids)
  unsigned bit_flips = 8;
};

/// Deterministic in `config.seed`.  Deaths are non-overlapping per card
/// (a card recovers before it can die again) and sorted by time.
FaultPlan make_random_fault_plan(const RandomFaultConfig& config);

}  // namespace aad::sim
