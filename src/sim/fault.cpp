#include "sim/fault.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/prng.h"

namespace aad::sim {
namespace {

/// Exponential draw with the given mean (zero mean -> always zero), the
/// same shape the workload generators use for arrival gaps.
SimTime exponential(Prng& rng, SimTime mean) {
  if (mean <= SimTime::zero()) return SimTime::zero();
  const double u = rng.next_double();
  const double scale = -std::log(1.0 - u);
  return SimTime::ps(static_cast<std::int64_t>(
      static_cast<double>(mean.picoseconds()) * scale));
}

}  // namespace

FaultPlan make_random_fault_plan(const RandomFaultConfig& config) {
  AAD_REQUIRE(config.cards >= 1, "a fault plan needs at least one card");
  AAD_REQUIRE(config.death_rate_per_ms >= 0.0 &&
                  config.corruption_rate_per_ms >= 0.0,
              "fault rates must be non-negative");
  FaultPlan plan;

  // Independent per-card streams, derived like the workload generators'
  // per-client seeds so one plan seed reproduces the whole fleet's faults.
  for (unsigned card = 0; card < config.cards; ++card) {
    if (config.death_rate_per_ms > 0.0) {
      Prng rng(config.seed * 1000003ull + card);
      const SimTime mean_gap = SimTime::ps(static_cast<std::int64_t>(
          1e9 / config.death_rate_per_ms));  // 1 ms = 1e9 ps
      SimTime t;
      for (;;) {
        t += exponential(rng, mean_gap);
        if (t >= config.horizon) break;
        CardDeath death;
        death.card = card;
        death.at = t;
        const SimTime down = exponential(rng, config.mean_downtime);
        // A zero-length outage is a no-op; keep every generated death
        // observable by flooring the downtime at one microsecond.
        death.recover_at = t + std::max(down, SimTime::us(1));
        plan.deaths.push_back(death);
        t = death.recover_at;  // a dead card cannot die again
      }
    }
    if (config.corruption_rate_per_ms > 0.0 && !config.functions.empty()) {
      Prng rng((config.seed * 1000003ull + card) ^ 0xD1E5EA5EDF00DULL);
      const SimTime mean_gap = SimTime::ps(
          static_cast<std::int64_t>(1e9 / config.corruption_rate_per_ms));
      SimTime t;
      for (;;) {
        t += exponential(rng, mean_gap);
        if (t >= config.horizon) break;
        RomCorruption corruption;
        corruption.card = card;
        corruption.function = config.functions[static_cast<std::size_t>(
            rng.next_below(config.functions.size()))];
        corruption.at = t;
        corruption.seed = rng.next();
        corruption.bit_flips = config.bit_flips;
        plan.corruptions.push_back(corruption);
      }
    }
  }

  const auto by_time = [](const auto& a, const auto& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.card < b.card;
  };
  std::sort(plan.deaths.begin(), plan.deaths.end(), by_time);
  std::sort(plan.corruptions.begin(), plan.corruptions.end(), by_time);
  return plan;
}

}  // namespace aad::sim
