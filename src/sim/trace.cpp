#include "sim/trace.h"

#include <sstream>

namespace aad::sim {

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kHostPci: return "host-pci";
    case Stage::kRom: return "rom";
    case Stage::kRam: return "ram";
    case Stage::kDecompress: return "decompress";
    case Stage::kConfigure: return "configure";
    case Stage::kDataIn: return "data-in";
    case Stage::kExecute: return "execute";
    case Stage::kDataOut: return "data-out";
    case Stage::kFirmware: return "firmware";
  }
  return "unknown";
}

void Trace::record(Stage stage, std::string label, SimTime begin, SimTime end) {
  if (!enabled_) return;
  spans_.push_back(Span{stage, std::move(label), begin, end});
}

std::map<Stage, SimTime> Trace::stage_totals() const {
  std::map<Stage, SimTime> totals;
  for (const Span& span : spans_) totals[span.stage] += span.duration();
  return totals;
}

std::string Trace::summary() const {
  std::ostringstream out;
  out << "trace: " << spans_.size() << " spans\n";
  for (const auto& [stage, total] : stage_totals())
    out << "  " << to_string(stage) << ": " << to_string(total) << "\n";
  return out.str();
}

}  // namespace aad::sim
