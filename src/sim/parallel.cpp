#include "sim/parallel.h"

#include <algorithm>
#include <iterator>

#include "common/error.h"

namespace aad::sim {

ParallelScheduler::ParallelScheduler(unsigned shards, unsigned threads,
                                     SimTime lookahead)
    : lookahead_(lookahead) {
  AAD_REQUIRE(shards > 0, "parallel engine needs at least one shard");
  AAD_REQUIRE(lookahead > SimTime::zero(),
              "conservative sync needs a positive lookahead");
  shards_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  threads_ = std::max(1u, std::min(threads, shards));
  // The driving thread is worker zero; spawn the rest once, up front.
  // They sleep on round_start_ between rounds.
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ParallelScheduler::~ParallelScheduler() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    stopping_ = true;
  }
  round_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Scheduler& ParallelScheduler::shard(unsigned index) {
  AAD_REQUIRE(index < shards_.size(), "shard index out of range");
  return shards_[index]->scheduler;
}

void ParallelScheduler::set_lookahead(SimTime lookahead) {
  AAD_REQUIRE(lookahead > SimTime::zero(),
              "conservative sync needs a positive lookahead");
  AAD_REQUIRE(!started_, "lookahead is frozen after the first round");
  lookahead_ = lookahead;
}

void ParallelScheduler::post_to_coord(unsigned source, SimTime when,
                                      Scheduler::Action action) {
  AAD_REQUIRE(source < shards_.size(), "message source out of range");
  Shard& shard = *shards_[source];
  AAD_CHECK(when >= shard.scheduler.now(),
            "cross-shard message dated before its source clock");
  // A message can never be delivered in the coordinator's past.  For
  // round-generated messages this is a no-op (conservative rounds only run
  // card events at >= the coordinator's clock); it only binds for
  // host-context posts from a shard whose clock trails the coordinator
  // (e.g. an imperative kill_card failing a lagging card's request).
  // coord_.now() is stable while a round runs — the driving thread parks
  // at the barrier — so this read is safe from worker threads.
  shard.outbox.push_back(Message{std::max(when, coord_.now()), source,
                                 shard.next_message_seq++, std::move(action)});
}

void ParallelScheduler::deliver_messages() {
  mailbox_.clear();
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->outbox.empty()) continue;
    std::move(shard->outbox.begin(), shard->outbox.end(),
              std::back_inserter(mailbox_));
    shard->outbox.clear();
  }
  if (mailbox_.empty()) return;
  // (when, source) with per-source posting order preserved by stable_sort:
  // a total order no thread interleaving can perturb.
  std::stable_sort(mailbox_.begin(), mailbox_.end(),
                   [](const Message& a, const Message& b) {
                     if (a.when != b.when) return a.when < b.when;
                     return a.source < b.source;
                   });
  for (Message& message : mailbox_) {
    // Conservative rounds guarantee no message is dated before the
    // coordinator's clock; a violation here means the horizon math broke.
    AAD_CHECK(message.when >= coord_.now(),
              "cross-shard message arrived in the coordinator's past");
    coord_.schedule_at(message.when, std::move(message.action));
  }
  mailbox_.clear();
}

void ParallelScheduler::work_round() {
  for (;;) {
    const std::size_t slot =
        round_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= round_shards_.size()) return;
    Shard& shard = *shards_[round_shards_[slot]];
    try {
      shard.round_executed = shard.scheduler.run_before(round_horizon_);
    } catch (...) {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      if (!round_error_) round_error_ = std::current_exception();
    }
  }
}

void ParallelScheduler::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      round_start_.wait(
          lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    work_round();
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      if (--unfinished_ == 0) round_done_.notify_one();
    }
  }
}

std::size_t ParallelScheduler::execute_round() {
  ++rounds_;
  if (workers_.empty() || round_shards_.size() == 1) {
    // No pool (threads == 1) or nothing to share: run inline without the
    // wake/sleep handshake.
    std::size_t executed = 0;
    for (unsigned index : round_shards_)
      executed += shards_[index]->scheduler.run_before(round_horizon_);
    return executed;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    round_cursor_.store(0, std::memory_order_relaxed);
    unfinished_ = workers_.size();
    ++generation_;
  }
  round_start_.notify_all();
  work_round();
  {
    std::unique_lock<std::mutex> lock(pool_mutex_);
    round_done_.wait(lock, [&] { return unfinished_ == 0; });
  }
  if (round_error_) {
    std::exception_ptr error = round_error_;
    round_error_ = nullptr;
    std::rethrow_exception(error);
  }
  std::size_t executed = 0;
  for (unsigned index : round_shards_)
    executed += shards_[index]->round_executed;
  return executed;
}

std::size_t ParallelScheduler::drain(const SimTime* deadline) {
  started_ = true;
  std::size_t executed = 0;
  for (;;) {
    deliver_messages();
    std::optional<SimTime> next_coord = coord_.next_time();
    std::optional<SimTime> next_card;
    for (std::unique_ptr<Shard>& shard : shards_) {
      const std::optional<SimTime> t = shard->scheduler.next_time();
      if (t && (!next_card || *t < *next_card)) next_card = t;
    }
    if (!next_coord && !next_card) break;
    const SimTime first = next_coord && (!next_card || *next_coord <= *next_card)
                              ? *next_coord
                              : *next_card;
    if (deadline && first > *deadline) break;

    if (next_coord && (!next_card || *next_coord <= *next_card)) {
      // Every shard has burned down all work below the coordination
      // timestamp, so cross-card reads in this batch are exact.  run_until
      // also absorbs any same-timestamp events the batch schedules.
      executed += coord_.run_until(*next_coord);
      continue;
    }

    // Parallel card round: safe up to (exclusive) the earliest possible
    // cross-card influence.  Coordination events can only inject work at
    // >= next_coord; other cards only talk via the coordinator; and the
    // lookahead window bounds staleness when no coordination event is
    // pending at all.
    SimTime horizon = *next_card + lookahead_;
    if (next_coord && *next_coord < horizon) horizon = *next_coord;
    if (deadline && *deadline + SimTime::ps(1) < horizon)
      horizon = *deadline + SimTime::ps(1);  // keep events AT deadline in
    round_shards_.clear();
    for (unsigned i = 0; i < shards_.size(); ++i) {
      const std::optional<SimTime> t = shards_[i]->scheduler.next_time();
      if (t && *t < horizon) round_shards_.push_back(i);
    }
    round_horizon_ = horizon;
    executed += execute_round();
  }
  return executed;
}

std::size_t ParallelScheduler::run() {
  const std::size_t executed = drain(nullptr);
  sync_clocks();
  return executed;
}

std::size_t ParallelScheduler::run_until(SimTime deadline) {
  const std::size_t executed = drain(&deadline);
  if (deadline > coord_.now()) coord_.run_until(deadline);
  sync_clocks();
  return executed;
}

SimTime ParallelScheduler::now() const noexcept {
  SimTime t = coord_.now();
  for (const std::unique_ptr<Shard>& shard : shards_)
    t = std::max(t, shard->scheduler.now());
  return t;
}

bool ParallelScheduler::idle() const noexcept {
  if (!coord_.idle()) return false;
  for (const std::unique_ptr<Shard>& shard : shards_)
    if (!shard->scheduler.idle() || !shard->outbox.empty()) return false;
  return true;
}

std::size_t ParallelScheduler::pending() const noexcept {
  std::size_t total = coord_.pending();
  for (const std::unique_ptr<Shard>& shard : shards_)
    total += shard->scheduler.pending() + shard->outbox.size();
  return total;
}

void ParallelScheduler::sync_clocks() {
  const SimTime frontier = now();
  if (frontier > coord_.now())
    coord_.run_until(frontier);  // nothing <= frontier pending by contract
  for (std::unique_ptr<Shard>& shard : shards_) {
    Scheduler& scheduler = shard->scheduler;
    if (frontier > scheduler.now()) scheduler.run_until(frontier);
  }
}

}  // namespace aad::sim
