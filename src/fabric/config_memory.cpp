#include "fabric/config_memory.h"

#include <algorithm>

namespace aad::fabric {

ConfigMemory::ConfigMemory(const FrameGeometry& geometry)
    : geometry_(geometry), words_(geometry.device_words(), 0) {
  geometry.validate();
}

void ConfigMemory::write_frame(FrameIndex frame,
                               std::span<const Word> words) {
  AAD_REQUIRE(frame < geometry_.frame_count, "frame index out of range");
  AAD_REQUIRE(words.size() == geometry_.words_per_frame(),
              "frame write size mismatch");
  std::copy(words.begin(), words.end(),
            words_.begin() +
                static_cast<std::ptrdiff_t>(frame) *
                    geometry_.words_per_frame());
  ++frame_writes_;
  words_written_ += words.size();
}

std::span<const Word> ConfigMemory::read_frame(FrameIndex frame) const {
  AAD_REQUIRE(frame < geometry_.frame_count, "frame index out of range");
  return std::span<const Word>(
      words_.data() +
          static_cast<std::size_t>(frame) * geometry_.words_per_frame(),
      geometry_.words_per_frame());
}

void ConfigMemory::write_full(std::span<const Word> words) {
  AAD_REQUIRE(words.size() == geometry_.device_words(),
              "full write size mismatch");
  std::copy(words.begin(), words.end(), words_.begin());
  ++full_writes_;
  words_written_ += words.size();
}

void ConfigMemory::clear() { std::fill(words_.begin(), words_.end(), 0); }

}  // namespace aad::fabric
