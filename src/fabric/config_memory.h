// Frame-addressed configuration memory (the FPGA's SRAM configuration
// plane).  Partial reconfiguration rewrites individual frames; full
// reconfiguration rewrites the whole plane.  Write counters feed the
// reconfiguration-cost experiments.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fabric/geometry.h"

namespace aad::fabric {

class ConfigMemory {
 public:
  explicit ConfigMemory(const FrameGeometry& geometry);

  const FrameGeometry& geometry() const noexcept { return geometry_; }

  /// Overwrite one frame.  `words` must be exactly words_per_frame().
  void write_frame(FrameIndex frame, std::span<const Word> words);

  /// Read one frame.
  std::span<const Word> read_frame(FrameIndex frame) const;

  /// Overwrite the entire plane (full reconfiguration).  `words` must be
  /// exactly device_words().
  void write_full(std::span<const Word> words);

  /// Zero every frame (device erase / power-up state).
  void clear();

  // --- statistics ---------------------------------------------------------
  std::uint64_t frame_writes() const noexcept { return frame_writes_; }
  std::uint64_t full_writes() const noexcept { return full_writes_; }
  std::uint64_t words_written() const noexcept { return words_written_; }

 private:
  FrameGeometry geometry_;
  std::vector<Word> words_;
  std::uint64_t frame_writes_ = 0;
  std::uint64_t full_writes_ = 0;
  std::uint64_t words_written_ = 0;
};

}  // namespace aad::fabric
