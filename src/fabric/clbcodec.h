// Encoding of LUT slots and switch blocks into frame configuration words.
//
// Pin selectors are encoded with *logical* slot indices (position within the
// function's own frame sequence), never physical coordinates — this is what
// makes a function's partial bitstream relocatable into any set of free
// frames, contiguous or not (paper §2.5).
#pragma once

#include <span>
#include <vector>

#include "fabric/geometry.h"
#include "netlist/lutnetwork.h"

namespace aad::fabric {

/// Encode one LUT slot into kWordsPerLutSlot words.
///   word0: truth[15:0] | has_ff<<16 | is_output<<17 | output_bit<<20
///   word1..4: pin k: kind[2:0] | index<<3
void encode_slot(const netlist::LutSlot& slot, std::span<Word> out);

/// Decode one LUT slot from kWordsPerLutSlot words.
netlist::LutSlot decode_slot(std::span<const Word> in);

/// Derive the 4 switch-block words of a CLB from its 4 slots' pin selectors.
/// Switch word k packs pin-k routing of all 4 slots (kind + low index bits).
/// Redundant with the slot words by construction — like real switch-matrix
/// configuration it is highly structured, which is exactly what the
/// symmetry-aware compressors exploit.
void derive_switch_words(std::span<const netlist::LutSlot> clb_slots,
                         std::span<Word> out);

/// Serialize `network` into whole frame payloads (padded with empty slots).
/// Returns ceil(slots / slots_per_frame) frames of words_per_frame words.
std::vector<std::vector<Word>> encode_frames(
    const netlist::LutNetwork& network, const FrameGeometry& geometry);

/// Rebuild a LutNetwork from frame payloads laid out by encode_frames.
/// Trailing all-empty slots are trimmed.  Throws kCorruptData on malformed
/// or inconsistent switch words.
netlist::LutNetwork decode_frames(
    std::span<const std::vector<Word>> frames, const FrameGeometry& geometry,
    const std::string& name, std::size_t input_width,
    std::size_t output_width);

}  // namespace aad::fabric
