// The simulated partially reconfigurable FPGA device.
//
// Combines the configuration plane (ConfigMemory), the configuration-port
// timing model, and a fabric clock.  Functions whose bitstreams carry real
// LUT networks are *executed from the configuration plane*: the device
// decodes the slots of the function's frames (in load order) back into a
// LutNetwork and steps it — so a bad partial reconfiguration genuinely
// produces wrong results, just like real hardware.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fabric/clbcodec.h"
#include "fabric/config_memory.h"
#include "fabric/config_port.h"
#include "netlist/lutnetwork.h"
#include "sim/time.h"

namespace aad::fabric {

class Fabric {
 public:
  struct Config {
    FrameGeometry geometry;
    ConfigPortModel port;
    sim::Frequency clock = sim::Frequency::mhz(100);
  };

  Fabric();  // default device (48x16 geometry, SelectMAP8 @ 50 MHz)
  explicit Fabric(const Config& config);

  const FrameGeometry& geometry() const noexcept { return config_.geometry; }
  const ConfigPortModel& port() const noexcept { return config_.port; }
  sim::Frequency clock() const noexcept { return config_.clock; }
  const ConfigMemory& memory() const noexcept { return memory_; }

  /// Partially reconfigure one frame; returns the config-port time spent.
  sim::SimTime configure_frame(FrameIndex frame, std::span<const Word> words);

  /// Fully reconfigure the device; returns the config-port time spent.
  sim::SimTime configure_full(std::span<const Word> words);

  /// Erase the configuration plane (no timing; models power-up).
  void erase();

  /// Rebuild the executable LUT network of a function occupying `frames`
  /// *in logical (load) order*.  Frames need not be contiguous.
  netlist::LutNetwork extract_network(std::span<const FrameIndex> frames,
                                      const std::string& name,
                                      std::size_t input_width,
                                      std::size_t output_width) const;

  /// Duration of `cycles` fabric clock cycles.
  sim::SimTime execution_time(std::int64_t cycles) const noexcept {
    return config_.clock.cycles(cycles);
  }

 private:
  Config config_;
  ConfigMemory memory_;
};

}  // namespace aad::fabric
