// Device geometry of the simulated partially reconfigurable FPGA.
//
// Following the paper's definition, a *frame* is "a prespecified number of
// Logic Blocks and the relevant Switch Blocks": here one column of
// `clb_rows` CLBs plus their switch blocks.  A frame is the atomic unit of
// (re)configuration, exactly as on the Virtex-II the proof of concept used.
//
// Per-CLB configuration layout (all 32-bit words):
//   4 LUT slots x 5 words  = 20 words  (truth table + flags, 4 pin selectors)
//   switch block            =  4 words  (packed pin routing, one per pin row)
//   total                   = 24 words
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>

#include "common/error.h"

namespace aad::fabric {

using FrameIndex = std::uint32_t;
using Word = std::uint32_t;

constexpr unsigned kLutsPerClb = 4;
constexpr unsigned kWordsPerLutSlot = 5;
constexpr unsigned kSwitchWordsPerClb = 4;
constexpr unsigned kWordsPerClb =
    kLutsPerClb * kWordsPerLutSlot + kSwitchWordsPerClb;

struct FrameGeometry {
  unsigned clb_rows = 16;    ///< CLBs per frame (column height)
  unsigned frame_count = 48; ///< frames (columns) on the device

  constexpr unsigned slots_per_frame() const noexcept {
    return clb_rows * kLutsPerClb;
  }
  constexpr unsigned words_per_frame() const noexcept {
    return clb_rows * kWordsPerClb;
  }
  constexpr std::size_t device_words() const noexcept {
    return static_cast<std::size_t>(frame_count) * words_per_frame();
  }
  constexpr std::size_t device_bytes() const noexcept {
    return device_words() * sizeof(Word);
  }
  constexpr std::size_t frame_bytes() const noexcept {
    return static_cast<std::size_t>(words_per_frame()) * sizeof(Word);
  }

  void validate() const {
    AAD_REQUIRE(clb_rows >= 1 && clb_rows <= 256, "clb_rows out of range");
    AAD_REQUIRE(frame_count >= 1 && frame_count <= 4096,
                "frame_count out of range");
  }

  bool operator==(const FrameGeometry&) const = default;
};

/// Device id string used in bitstream headers ("AAD-48x16").
std::string device_id(const FrameGeometry& geometry);

}  // namespace aad::fabric
