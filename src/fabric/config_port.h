// Configuration-port timing model (SelectMAP-style parallel port).
//
// The configuration module shifts decompressed frame words into the device
// `width_bits` at a time at `clock`; each frame additionally pays an
// address-setup overhead (FAR write + sync).  Pure model — the actual state
// change happens in ConfigMemory; the MCU advances simulated time by the
// durations computed here.
#pragma once

#include "fabric/geometry.h"
#include "sim/time.h"

namespace aad::fabric {

struct ConfigPortModel {
  unsigned width_bits = 8;                       ///< port width (SelectMAP8)
  sim::Frequency clock = sim::Frequency::mhz(50);
  unsigned frame_overhead_cycles = 24;           ///< FAR + sync per frame
  unsigned full_overhead_cycles = 1200;          ///< device init on full load

  /// Cycles to shift `words` 32-bit words through the port.
  std::int64_t shift_cycles(std::size_t words) const noexcept {
    const std::size_t bits = words * 32;
    return static_cast<std::int64_t>((bits + width_bits - 1) / width_bits);
  }

  /// Time to configure one frame (partial reconfiguration step).
  sim::SimTime frame_time(const FrameGeometry& geometry) const noexcept {
    return clock.cycles(shift_cycles(geometry.words_per_frame()) +
                        frame_overhead_cycles);
  }

  /// Time to configure the entire device (full reconfiguration).
  sim::SimTime full_time(const FrameGeometry& geometry) const noexcept {
    return clock.cycles(shift_cycles(geometry.device_words()) +
                        full_overhead_cycles);
  }
};

}  // namespace aad::fabric
