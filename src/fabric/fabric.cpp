#include "fabric/fabric.h"

namespace aad::fabric {

Fabric::Fabric() : Fabric(Config{}) {}

Fabric::Fabric(const Config& config)
    : config_(config), memory_(config.geometry) {
  config_.geometry.validate();
}

sim::SimTime Fabric::configure_frame(FrameIndex frame,
                                     std::span<const Word> words) {
  memory_.write_frame(frame, words);
  return config_.port.frame_time(config_.geometry);
}

sim::SimTime Fabric::configure_full(std::span<const Word> words) {
  memory_.write_full(words);
  return config_.port.full_time(config_.geometry);
}

void Fabric::erase() { memory_.clear(); }

netlist::LutNetwork Fabric::extract_network(
    std::span<const FrameIndex> frames, const std::string& name,
    std::size_t input_width, std::size_t output_width) const {
  std::vector<std::vector<Word>> payloads;
  payloads.reserve(frames.size());
  for (FrameIndex f : frames) {
    const auto span = memory_.read_frame(f);
    payloads.emplace_back(span.begin(), span.end());
  }
  return decode_frames(payloads, config_.geometry, name, input_width,
                       output_width);
}

}  // namespace aad::fabric
