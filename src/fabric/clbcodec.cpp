#include "fabric/clbcodec.h"

#include "common/bitops.h"

namespace aad::fabric {

using netlist::LutNetwork;
using netlist::LutSlot;
using netlist::NetKind;
using netlist::NetRef;

namespace {

constexpr unsigned kKindBits = 3;
constexpr Word kKindMask = (1u << kKindBits) - 1;

Word encode_pin(const NetRef& ref) {
  return (static_cast<Word>(ref.kind) & kKindMask) | (ref.index << kKindBits);
}

NetRef decode_pin(Word word) {
  const auto kind_raw = word & kKindMask;
  if (kind_raw > static_cast<Word>(NetKind::kLutReg))
    AAD_FAIL(ErrorCode::kCorruptData, "invalid pin selector kind");
  NetRef ref;
  ref.kind = static_cast<NetKind>(kind_raw);
  ref.index = word >> kKindBits;
  return ref;
}

bool slot_is_empty(const LutSlot& slot) {
  return slot == LutSlot{};
}

}  // namespace

std::string device_id(const FrameGeometry& geometry) {
  return "AAD-" + std::to_string(geometry.frame_count) + "x" +
         std::to_string(geometry.clb_rows);
}

void encode_slot(const LutSlot& slot, std::span<Word> out) {
  AAD_REQUIRE(out.size() == kWordsPerLutSlot, "slot word span size mismatch");
  out[0] = static_cast<Word>(slot.truth) |
           (slot.has_ff ? (1u << 16) : 0u) |
           (slot.is_output ? (1u << 17) : 0u) |
           (static_cast<Word>(slot.output_bit) << 20);
  for (unsigned pin = 0; pin < 4; ++pin)
    out[1 + pin] = encode_pin(slot.pins[pin]);
}

LutSlot decode_slot(std::span<const Word> in) {
  AAD_REQUIRE(in.size() == kWordsPerLutSlot, "slot word span size mismatch");
  LutSlot slot;
  slot.truth = static_cast<std::uint16_t>(in[0] & 0xFFFFu);
  slot.has_ff = (in[0] >> 16) & 1u;
  slot.is_output = (in[0] >> 17) & 1u;
  slot.output_bit = static_cast<std::uint16_t>(in[0] >> 20);
  for (unsigned pin = 0; pin < 4; ++pin)
    slot.pins[pin] = decode_pin(in[1 + pin]);
  return slot;
}

void derive_switch_words(std::span<const LutSlot> clb_slots,
                         std::span<Word> out) {
  AAD_REQUIRE(clb_slots.size() == kLutsPerClb, "CLB must have 4 slots");
  AAD_REQUIRE(out.size() == kSwitchWordsPerClb, "switch span size mismatch");
  // Switch word k: byte s holds (kind<<5 | index&0x1F) of slot s, pin k.
  for (unsigned pin = 0; pin < kSwitchWordsPerClb; ++pin) {
    Word w = 0;
    for (unsigned s = 0; s < kLutsPerClb; ++s) {
      const NetRef& ref = clb_slots[s].pins[pin];
      const Word byte = (static_cast<Word>(ref.kind) << 5) |
                        (ref.index & 0x1Fu);
      w |= byte << (8 * s);
    }
    out[pin] = w;
  }
}

std::vector<std::vector<Word>> encode_frames(const LutNetwork& network,
                                             const FrameGeometry& geometry) {
  geometry.validate();
  const auto& slots = network.slots();
  const unsigned per_frame = geometry.slots_per_frame();
  const std::size_t frame_count = std::max<std::size_t>(
      1, bits::ceil_div(slots.size(), per_frame));

  std::vector<std::vector<Word>> frames(
      frame_count, std::vector<Word>(geometry.words_per_frame(), 0));

  for (std::size_t f = 0; f < frame_count; ++f) {
    auto& payload = frames[f];
    for (unsigned row = 0; row < geometry.clb_rows; ++row) {
      LutSlot clb[kLutsPerClb];
      for (unsigned s = 0; s < kLutsPerClb; ++s) {
        const std::size_t logical =
            f * per_frame + row * kLutsPerClb + s;
        if (logical < slots.size()) clb[s] = slots[logical];
      }
      const std::size_t base = static_cast<std::size_t>(row) * kWordsPerClb;
      for (unsigned s = 0; s < kLutsPerClb; ++s)
        encode_slot(clb[s], std::span<Word>(&payload[base + s * kWordsPerLutSlot],
                                            kWordsPerLutSlot));
      derive_switch_words(
          std::span<const LutSlot>(clb, kLutsPerClb),
          std::span<Word>(&payload[base + kLutsPerClb * kWordsPerLutSlot],
                          kSwitchWordsPerClb));
    }
  }
  return frames;
}

netlist::LutNetwork decode_frames(std::span<const std::vector<Word>> frames,
                                  const FrameGeometry& geometry,
                                  const std::string& name,
                                  std::size_t input_width,
                                  std::size_t output_width) {
  geometry.validate();
  LutNetwork network(name, input_width, output_width);
  std::vector<LutSlot> all;
  for (const auto& payload : frames) {
    AAD_REQUIRE(payload.size() == geometry.words_per_frame(),
                "frame payload size mismatch");
    for (unsigned row = 0; row < geometry.clb_rows; ++row) {
      const std::size_t base = static_cast<std::size_t>(row) * kWordsPerClb;
      LutSlot clb[kLutsPerClb];
      for (unsigned s = 0; s < kLutsPerClb; ++s)
        clb[s] = decode_slot(std::span<const Word>(
            &payload[base + s * kWordsPerLutSlot], kWordsPerLutSlot));
      // Cross-check the redundant switch-block words; a mismatch means the
      // configuration stream was corrupted between ROM and config port.
      Word expect[kSwitchWordsPerClb];
      derive_switch_words(std::span<const LutSlot>(clb, kLutsPerClb),
                          std::span<Word>(expect, kSwitchWordsPerClb));
      for (unsigned k = 0; k < kSwitchWordsPerClb; ++k)
        if (payload[base + kLutsPerClb * kWordsPerLutSlot + k] != expect[k])
          AAD_FAIL(ErrorCode::kCorruptData,
                   "switch-block words inconsistent with LUT selectors");
      for (unsigned s = 0; s < kLutsPerClb; ++s) all.push_back(clb[s]);
    }
  }
  while (!all.empty() && slot_is_empty(all.back())) all.pop_back();
  for (const LutSlot& slot : all) network.add_slot(slot);
  network.validate();
  return network;
}

}  // namespace aad::fabric
