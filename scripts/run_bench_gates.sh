#!/usr/bin/env bash
# Run every bench smoke + regression gate from scripts/bench_gates.manifest.
#
# Each manifest entry is `name|smoke|gate`: the smoke command runs inside
# the build directory (regenerating the bench's deterministic --json
# artifact or --trace export), the gate command runs at the repo root
# (diffing against bench/baselines/ via check_bench.py, or validating the
# trace via check_trace.py).  CI used to carry one copy-pasted step pair
# per bench; adding a gate is now one manifest line.
#
# All entries run even after a failure so one drifted baseline does not
# hide another; the exit status is non-zero when any smoke or gate failed.
#
# Usage: run_bench_gates.sh [BUILD_DIR]   (default: <repo>/build)
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
manifest="$repo/scripts/bench_gates.manifest"

if [ ! -d "$build" ]; then
  echo "run_bench_gates: build directory $build does not exist" >&2
  exit 2
fi

failed=()
while IFS='|' read -r name smoke gate; do
  case "$name" in ''|\#*) continue ;; esac
  echo "::group::bench gate: $name"
  ok=1
  if ! (cd "$build" && eval "$smoke"); then
    echo "run_bench_gates: FAIL($name): smoke run" >&2
    ok=0
  elif ! (cd "$repo" && eval "$gate"); then
    echo "run_bench_gates: FAIL($name): gate" >&2
    ok=0
  fi
  echo "::endgroup::"
  [ "$ok" -eq 1 ] || failed+=("$name")
done < "$manifest"

if [ "${#failed[@]}" -gt 0 ]; then
  echo "run_bench_gates: ${#failed[@]} gate(s) failed: ${failed[*]}" >&2
  exit 1
fi
echo "run_bench_gates: all gates passed"
