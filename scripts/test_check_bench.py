#!/usr/bin/env python3
"""Unit tests for scripts/check_bench.py — the CI bench-regression gate.

The differ IS the gate: a bug that makes it accept everything would let
perf regressions ship behind green CI, so it gets its own tests, run under
ctest (CMake registers this file as `check_bench_selftest`).  Each case
invokes the script as a subprocess — argument parsing, exit codes, and
output all exercised exactly the way the workflow uses them.

Only the Python standard library is used.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_bench.py")


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_check(self, baseline, candidate, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, baseline, candidate, *extra],
            capture_output=True,
            text=True,
        )

    def test_identical_passes(self):
        base = self.write("base.json", {"rps": 1000.0, "policy": "affinity"})
        cand = self.write("cand.json", {"rps": 1000.0, "policy": "affinity"})
        result = self.run_check(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK", result.stdout)

    def test_numeric_drift_within_tolerance_passes(self):
        base = self.write("base.json", {"rps": 1000.0})
        cand = self.write("cand.json", {"rps": 1010.0})  # +1% < default 2%
        self.assertEqual(self.run_check(base, cand).returncode, 0)

    def test_numeric_drift_beyond_tolerance_fails(self):
        base = self.write("base.json", {"rps": 1000.0})
        cand = self.write("cand.json", {"rps": 1100.0})  # +10%
        result = self.run_check(base, cand)
        self.assertEqual(result.returncode, 1)
        self.assertIn("rps", result.stdout)

    def test_rel_tol_flag_widens_the_gate(self):
        base = self.write("base.json", {"rps": 1000.0})
        cand = self.write("cand.json", {"rps": 1100.0})
        self.assertEqual(
            self.run_check(base, cand, "--rel-tol", "0.15").returncode, 0
        )

    def test_abs_tol_covers_near_zero_metrics(self):
        base = self.write("base.json", {"wait": 0.0})
        cand = self.write("cand.json", {"wait": 1e-12})
        self.assertEqual(self.run_check(base, cand).returncode, 0)

    def test_string_mismatch_fails(self):
        base = self.write("base.json", {"policy": "affinity"})
        cand = self.write("cand.json", {"policy": "round-robin"})
        self.assertEqual(self.run_check(base, cand).returncode, 1)

    def test_missing_metric_fails(self):
        base = self.write("base.json", {"rps": 1.0, "hit": 0.5})
        cand = self.write("cand.json", {"rps": 1.0})
        result = self.run_check(base, cand)
        self.assertEqual(result.returncode, 1)
        self.assertIn("disappeared", result.stdout)

    def test_new_metric_fails(self):
        base = self.write("base.json", {"rps": 1.0})
        cand = self.write("cand.json", {"rps": 1.0, "extra": 2.0})
        result = self.run_check(base, cand)
        self.assertEqual(result.returncode, 1)
        self.assertIn("new metric", result.stdout)

    def test_unreadable_or_malformed_input_exits_2(self):
        base = self.write("base.json", {"rps": 1.0})
        self.assertEqual(
            self.run_check(base, os.path.join(self.tmp.name, "nope.json")).returncode,
            2,
        )
        broken = self.write("broken.json", "{not json")
        self.assertEqual(self.run_check(base, broken).returncode, 2)
        array = self.write("array.json", [1, 2, 3])
        self.assertEqual(self.run_check(base, array).returncode, 2)

    def test_ignore_keys_skips_value_comparison(self):
        # Wall-clock metrics ride in gated JSON: wildly different values
        # pass when the key matches an ignore pattern.
        base = self.write("base.json", {"host_ms_c8_t4": 100.0, "digest": "ab"})
        cand = self.write("cand.json", {"host_ms_c8_t4": 9000.0, "digest": "ab"})
        result = self.run_check(base, cand, "--ignore-keys", "*host_ms*")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("1 ignored", result.stdout)

    def test_ignore_keys_still_requires_presence(self):
        # Ignored means "don't compare the value", NOT "optional": a metric
        # vanishing or appearing still fails the gate.
        base = self.write("base.json", {"host_ms": 100.0, "digest": "ab"})
        cand_missing = self.write("cand1.json", {"digest": "ab"})
        self.assertEqual(
            self.run_check(base, cand_missing, "--ignore-keys", "host_ms").returncode,
            1,
        )
        cand_extra = self.write(
            "cand2.json", {"host_ms": 100.0, "digest": "ab", "events_per_sec": 5.0}
        )
        self.assertEqual(
            self.run_check(
                base, cand_extra, "--ignore-keys", "host_ms,events_per_sec"
            ).returncode,
            1,
        )

    def test_ignore_keys_comma_lists_and_repeats_combine(self):
        base = self.write(
            "base.json", {"host_ms": 1.0, "events_per_sec": 2.0, "speedup": 3.0, "d": "x"}
        )
        cand = self.write(
            "cand.json", {"host_ms": 99.0, "events_per_sec": 88.0, "speedup": 77.0, "d": "x"}
        )
        result = self.run_check(
            base, cand, "--ignore-keys", "host_ms,events_per_sec",
            "--ignore-keys", "speedup",
        )
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("3 ignored", result.stdout)

    def test_ignored_key_does_not_mask_other_drift(self):
        base = self.write("base.json", {"host_ms": 1.0, "digest": "ab"})
        cand = self.write("cand.json", {"host_ms": 99.0, "digest": "cd"})
        result = self.run_check(base, cand, "--ignore-keys", "host_ms")
        self.assertEqual(result.returncode, 1)
        self.assertIn("digest", result.stdout)


if __name__ == "__main__":
    unittest.main()
