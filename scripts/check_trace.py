#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by `--trace <path>`.

The telemetry trace sink (src/telemetry/trace_sink.h) records lifecycle
spans in sim-time — PCI transfers, bitstream decode/load, fabric execution
windows, batch holds, prefetches, card deaths — and exports them as Chrome
trace-event JSON that chrome://tracing and Perfetto open directly.  This
gate runs in CI on a real bench run and fails when the export is
malformed, so a refactor that breaks span bookkeeping (a lane emitting
overlapping occupancy windows, a span losing its function arg, a track
without metadata) is caught by the trace artifact step instead of by the
first person who opens the file in Perfetto.

Checks:
  * the file is JSON with a `traceEvents` list holding at least
    --min-events non-metadata events (default 1);
  * every event has a known phase (M metadata, X complete span, i instant)
    and the fields that phase requires; X durations are non-negative;
  * any B/E begin/end events balance per track (the sink emits only
    complete X spans, so an unpaired B or E means a foreign writer);
  * every event's (pid, tid) has thread_name metadata and its pid has
    process_name metadata — unlabeled tracks render as bare numbers;
  * per track, timestamps are sorted (the sink writes the deterministic
    (ts, pid, tid, seq) merge order);
  * spans carry the args their category promises: pci/engine/fabric spans
    name their request/client/function, prefetch and batch spans their
    function, dispatch instants their client/function/card;
  * hardware lanes are serialized: on tracks named pci, engine or fabric
    the spans must not overlap, because each mirrors a resource the
    simulator books exclusively.  Logical lanes (batch holds, fleet
    dispatch) may overlap and are exempt.

Exit status: 0 valid, 1 malformed, 2 usage or I/O error.  Only the Python
standard library is used.
"""

import argparse
import decimal
import json
import sys

# Lanes that mirror an exclusively-booked hardware resource; their spans
# must tile without overlap.  "batch" (hold windows) and "dispatch"
# (routing decisions) are logical lanes where overlap is expected.
SERIALIZED_LANES = {"pci", "engine", "fabric"}

# Args each category promises on its events (trace_sink.cpp only writes an
# arg when the recorder passed it, so presence here is a real contract).
REQUIRED_ARGS = {
    "pci": ("request", "client", "function"),
    "engine": ("request", "client", "function"),
    "fabric": ("request", "client", "function"),
    "prefetch": ("function",),
    "batch": ("function",),
    "dispatch": ("client", "function", "card"),
}


def fail(errors, message):
    errors.append(message)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            # Decimal keeps the fixed six-decimal microsecond timestamps
            # exact, so the overlap checks need no float tolerance.
            return json.load(f, parse_float=decimal.Decimal)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_trace: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description="Validate a Chrome trace-event JSON export."
    )
    parser.add_argument("trace", help="trace file written by `--trace <path>`")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum number of span/instant events (default: %(default)s)",
    )
    args = parser.parse_args()

    doc = load(args.trace)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        print(
            f"check_trace: {args.trace} has no traceEvents list", file=sys.stderr
        )
        return 1

    errors = []
    process_names = {}  # pid -> name
    track_names = {}  # (pid, tid) -> name
    track_events = {}  # (pid, tid) -> [event, ...] in file order
    be_depth = {}  # (pid, tid) -> open B count
    spans = instants = 0

    for index, event in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(errors, f"{where}: not an object")
            continue
        phase = event.get("ph")
        pid = event.get("pid")
        if not isinstance(pid, int):
            fail(errors, f"{where}: missing integer pid")
            continue

        if phase == "M":
            meta = event.get("args", {}).get("name")
            if not isinstance(meta, str) or not meta:
                fail(errors, f"{where}: metadata without args.name")
            elif event.get("name") == "process_name":
                process_names[pid] = meta
            elif event.get("name") == "thread_name":
                track_names[(pid, event.get("tid"))] = meta
            continue

        tid = event.get("tid")
        if not isinstance(tid, int):
            fail(errors, f"{where}: missing integer tid")
            continue
        key = (pid, tid)

        if phase in ("B", "E"):
            depth = be_depth.get(key, 0) + (1 if phase == "B" else -1)
            if depth < 0:
                fail(errors, f"{where}: E without a matching B on track {key}")
            be_depth[key] = depth
            continue
        if phase not in ("X", "i"):
            fail(errors, f"{where}: unknown phase {phase!r}")
            continue

        name = event.get("name")
        category = event.get("cat")
        ts = event.get("ts")
        if not isinstance(name, str) or not name:
            fail(errors, f"{where}: missing name")
        if not isinstance(category, str) or not category:
            fail(errors, f"{where}: missing cat")
        if not isinstance(ts, (int, decimal.Decimal)):
            fail(errors, f"{where}: missing numeric ts")
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, decimal.Decimal)) or dur < 0:
                fail(errors, f"{where}: span without non-negative dur")
                continue
            spans += 1
        else:
            if event.get("s") not in ("t", "p", "g"):
                fail(errors, f"{where}: instant without a scope")
            instants += 1

        event_args = event.get("args")
        if not isinstance(event_args, dict):
            fail(errors, f"{where}: missing args object")
            event_args = {}
        for required in REQUIRED_ARGS.get(category, ()):
            if not isinstance(event_args.get(required), int):
                fail(
                    errors,
                    f"{where}: {category}/{name} lacks integer arg "
                    f"{required!r}",
                )
        track_events.setdefault(key, []).append(event)

    for key, depth in be_depth.items():
        if depth != 0:
            fail(errors, f"track {key}: {depth} unclosed B event(s)")

    for key, events in track_events.items():
        lane = track_names.get(key)
        if lane is None:
            fail(errors, f"track {key}: no thread_name metadata")
        if key[0] not in process_names:
            fail(errors, f"track {key}: pid has no process_name metadata")
        previous_ts = None
        busy_until = None  # serialized lanes: end of the latest span
        for event in events:
            ts = event["ts"]
            if previous_ts is not None and ts < previous_ts:
                fail(
                    errors,
                    f"track {key} ({lane}): timestamps regress at ts={ts}",
                )
            previous_ts = ts
            if lane in SERIALIZED_LANES and event["ph"] == "X":
                if busy_until is not None and ts < busy_until:
                    fail(
                        errors,
                        f"track {key} ({lane}): span "
                        f"{event.get('name')!r} at ts={ts} overlaps the "
                        f"previous span ending at {busy_until}",
                    )
                busy_until = ts + event["dur"]

    total = spans + instants
    if total < args.min_events:
        fail(
            errors,
            f"only {total} span/instant event(s), expected at least "
            f"{args.min_events} — was the sink ever attached?",
        )

    if errors:
        print(f"check_trace: {args.trace} is malformed:")
        for message in errors[:50]:
            print(f"  {message}")
        if len(errors) > 50:
            print(f"  ... and {len(errors) - 50} more")
        return 1
    print(
        f"check_trace: OK — {spans} span(s) + {instants} instant(s) across "
        f"{len(track_events)} track(s), {len(process_names)} process(es)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
