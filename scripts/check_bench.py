#!/usr/bin/env python3
"""Gate a bench --json artifact against a checked-in baseline snapshot.

The experiment benches (bench/bench_*.cpp) print deterministic result
tables and, with `--json <path>`, record the same metrics as one flat JSON
object (see docs/BENCHMARKS.md).  Because the simulation is deterministic,
those numbers only move when the *simulated system* changes — so CI can
diff a freshly generated artifact against a snapshot committed under
bench/baselines/ and fail the job when a metric drifts, instead of
silently shipping the drift inside an uploaded artifact.

Usage:
    check_bench.py BASELINE CANDIDATE [--rel-tol R] [--abs-tol A]
                   [--ignore-keys PATTERNS]

Comparison rules:
  * numeric values pass when |cand - base| <= abs_tol + rel_tol * |base|
    (default rel-tol 0.02: the simulation is deterministic, but the trace
    generators draw exponentials through libm, so a different libm/compiler
    may move arrival times by a few ULPs; 2% absorbs that while any real
    behavioural regression — hit rates, hidden-reconfig time, makespan,
    batch amortization — moves metrics far more);
  * string values must match exactly;
  * a key missing from the candidate, or present only in the candidate,
    FAILS: a bench gaining or losing metrics must regenerate its baseline
    (see docs/BENCHMARKS.md, "Regenerating the baselines");
  * keys matching --ignore-keys (comma-separated fnmatch patterns, flag
    repeatable — e.g. `--ignore-keys '*host_ms*,*events_per_sec*'`) skip
    the VALUE comparison only: host wall-clock metrics can ride inside a
    gated artifact without tripping the tolerance, but the presence checks
    still apply, so an ignored metric silently appearing or vanishing
    fails the gate like any other.

Exit status: 0 all metrics within tolerance, 1 drift detected, 2 usage or
I/O error.  Only the Python standard library is used.
"""

import argparse
import fnmatch
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"check_bench: {path} is not a flat JSON object", file=sys.stderr)
        sys.exit(2)
    return data


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def group_of(key):
    """Metric-group prefix: the first two '_'-separated tokens.

    The benches name metrics `<experiment>_<metric>_<cell>` (e.g.
    fleet_hit_rate_cards4, prefetch_rps_bursty_on), so the first two tokens
    identify the metric family the per-group summary lines report on.
    """
    parts = key.split("_")
    return "_".join(parts[:2]) if len(parts) > 1 else key


def main():
    parser = argparse.ArgumentParser(
        description="Diff a bench --json artifact against its baseline."
    )
    parser.add_argument("baseline", help="checked-in snapshot (bench/baselines/*.json)")
    parser.add_argument("candidate", help="freshly generated --json artifact")
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.02,
        help="relative tolerance for numeric metrics (default: %(default)s)",
    )
    parser.add_argument(
        "--abs-tol",
        type=float,
        default=1e-9,
        help="absolute tolerance floor, for near-zero metrics (default: %(default)s)",
    )
    parser.add_argument(
        "--ignore-keys",
        action="append",
        default=[],
        metavar="PATTERNS",
        help=(
            "comma-separated fnmatch patterns of keys whose VALUES are not "
            "compared (presence is still checked); repeatable"
        ),
    )
    args = parser.parse_args()

    ignore_patterns = [
        pattern.strip()
        for group in args.ignore_keys
        for pattern in group.split(",")
        if pattern.strip()
    ]

    def ignored(key):
        return any(fnmatch.fnmatchcase(key, p) for p in ignore_patterns)

    base = load(args.baseline)
    cand = load(args.candidate)

    failures = []
    ignored_count = 0
    for key, base_value in base.items():
        if key not in cand:
            failures.append((key, base_value, "<missing>", "metric disappeared"))
            continue
        if ignored(key):
            ignored_count += 1
            continue
        cand_value = cand[key]
        if is_number(base_value) and is_number(cand_value):
            bound = args.abs_tol + args.rel_tol * abs(base_value)
            drift = abs(cand_value - base_value)
            if drift > bound:
                rel = drift / abs(base_value) if base_value else float("inf")
                failures.append(
                    (key, base_value, cand_value, f"drift {rel:+.1%} (> {args.rel_tol:.1%})")
                )
        elif base_value != cand_value:
            failures.append((key, base_value, cand_value, "value changed"))
    for key, cand_value in cand.items():
        if key not in base:
            failures.append((key, "<missing>", cand_value, "new metric not in baseline"))

    checked = len(base)
    if failures:
        print(
            f"check_bench: {len(failures)} metric(s) out of tolerance "
            f"against {args.baseline}:"
        )
        width = max(len(key) for key, *_ in failures)
        for key, base_value, cand_value, reason in failures:
            print(f"  {key:<{width}}  baseline={base_value}  candidate={cand_value}  [{reason}]")
        print(
            "If this change is intentionally perf-visible, regenerate the "
            "baseline snapshot (docs/BENCHMARKS.md, 'Regenerating the "
            "baselines') and quote the diff in the PR."
        )
        return 1
    # One PASS line per metric group so a green CI log still shows what was
    # actually covered (and how much of a group rode through on ignore).
    groups = {}
    for key in base:
        compared, skipped = groups.setdefault(group_of(key), [0, 0])
        if ignored(key):
            groups[group_of(key)][1] = skipped + 1
        else:
            groups[group_of(key)][0] = compared + 1
    width = max(len(g) for g in groups)
    for group in sorted(groups):
        compared, skipped = groups[group]
        note = f", {skipped} ignored" if skipped else ""
        print(f"check_bench: PASS {group:<{width}}  {compared} metric(s){note}")
    ignored_note = f" ({ignored_count} ignored)" if ignored_count else ""
    print(
        f"check_bench: OK — {checked} metric(s) within "
        f"rel-tol {args.rel_tol} of {args.baseline}{ignored_note}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
